//! **`LocalGridRoute`** — the paper's locality-aware routing algorithm
//! (Algorithm 2) and the transpose-trying main procedure (Algorithm 1).
//!
//! The naive 3-phase router decomposes the column multigraph `G[1,m]` into
//! `m` perfect matchings arbitrarily; a qubit two rows from its destination
//! may be staged at the far end of the grid (Figure 3 of the paper). The
//! locality-aware algorithm avoids this in two steps:
//!
//! 1. **Doubling window search** (lines 3–18): perfect matchings are first
//!    sought inside narrow row bands `[r, r+w]`, `w = 0, 1, 2, 4, …`, so
//!    matched qubits come from nearby rows. Because `G[1,m]` minus any set
//!    of perfect matchings stays regular, the search always completes with
//!    exactly `m` edge-disjoint perfect matchings.
//! 2. **MCBBM row assignment** (lines 19–23): matchings are assigned to
//!    staging rows by solving a maximum-cardinality *bottleneck* bipartite
//!    matching on `H(P, [m])` under the locality metric
//!    `Δ(M, r) = Σ |i_j − r| + Σ |i'_j − r|`, minimizing the worst
//!    detour any matching's qubits must take to reach their staging row.

use crate::grid_route::{
    build_column_multigraph, grid_route_with_sigmas, transpose_instance, untranspose_schedule,
    LineStrategy,
};
use crate::schedule::RoutingSchedule;
use qroute_matching::{bottleneck_assignment, min_sum_assignment, BipartiteMultigraph, EdgeId};
use qroute_perm::Permutation;
use qroute_topology::Grid;

/// How found matchings are assigned to staging rows (line 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentStrategy {
    /// MCBBM on `H(P, [m])` minimizing the maximum `Δ(M, r)` — the paper's
    /// choice.
    #[default]
    Bottleneck,
    /// Hungarian assignment minimizing `Σ Δ(M, r)` (ablation: total
    /// instead of worst-case locality).
    MinSum,
    /// Matching `k` goes to row `k` in extraction order (ablation:
    /// windowed matchings but arbitrary assignment).
    InOrder,
}

/// How perfect matchings are searched (lines 3–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowMode {
    /// The paper's doubling window search over row bands.
    #[default]
    Doubling,
    /// Ablation: skip banding entirely and extract all matchings from the
    /// full multigraph (locality then comes only from the row assignment).
    FullOnly,
}

/// Options for [`local_grid_route`] / [`main_procedure`].
#[derive(Debug, Clone, Copy)]
pub struct LocalRouteOptions {
    /// Row-assignment strategy (line 20).
    pub assignment: AssignmentStrategy,
    /// Matching search strategy (lines 3–18).
    pub window: WindowMode,
    /// Line routing strategy for the three phases.
    pub line: LineStrategy,
    /// Apply ASAP depth compaction to the final schedule.
    pub compact: bool,
    /// Algorithm 1: also route the transposed instance, keep the shallower.
    pub try_transpose: bool,
}

impl Default for LocalRouteOptions {
    fn default() -> LocalRouteOptions {
        LocalRouteOptions {
            assignment: AssignmentStrategy::Bottleneck,
            window: WindowMode::Doubling,
            line: LineStrategy::BestParity,
            compact: true,
            try_transpose: true,
        }
    }
}

impl LocalRouteOptions {
    /// Algorithm 2 exactly as written: bottleneck assignment, doubling
    /// windows, no compaction, no transpose (Algorithm 1 adds the
    /// transpose).
    pub fn paper() -> LocalRouteOptions {
        LocalRouteOptions {
            assignment: AssignmentStrategy::Bottleneck,
            window: WindowMode::Doubling,
            line: LineStrategy::EvenFirst,
            compact: false,
            try_transpose: false,
        }
    }
}

/// Quick necessary condition for a band to contain a perfect matching:
/// every left and every right column must be touched by at least one
/// candidate edge. Avoids a Hopcroft–Karp run on hopeless bands (the
/// common case while `w` is small).
fn band_can_match(mg: &BipartiteMultigraph, band: &[EdgeId]) -> bool {
    let n = mg.cols();
    if band.len() < n {
        return false;
    }
    let mut left = vec![false; n];
    let mut right = vec![false; n];
    let mut lc = 0;
    let mut rc = 0;
    for &id in band {
        let e = mg.edge(id);
        if !left[e.left] {
            left[e.left] = true;
            lc += 1;
        }
        if !right[e.right] {
            right[e.right] = true;
            rc += 1;
        }
    }
    lc == n && rc == n
}

/// Lines 3–18 of Algorithm 2: find `m` edge-disjoint perfect matchings of
/// the column multigraph by doubling window search. Consumes the edges of
/// `mg`; returns the matchings as edge-id vectors in discovery order.
pub fn find_local_matchings(
    grid: Grid,
    mg: &mut BipartiteMultigraph,
    window: WindowMode,
) -> Vec<Vec<EdgeId>> {
    let m = grid.rows();
    let mut found: Vec<Vec<EdgeId>> = Vec::with_capacity(m);

    if window == WindowMode::FullOnly {
        let all = mg.alive_edges();
        found = mg.extract_perfect_matchings(&all);
        assert_eq!(found.len(), m, "regular multigraph must yield m matchings");
        return found;
    }

    let mut w = 0usize;
    while found.len() < m {
        // One cooperative cancellation probe per window doubling.
        crate::budget::checkpoint();
        // Slide the window over every starting row instead of tiling the
        // rows into disjoint bands. Disjoint tiling is never aligned with
        // the workload's own locality structure (for 4-row-local
        // permutations it proposes [0,2],[3,5],… and [0,4],[5,9],… but
        // never [0,3],[4,7],…), which strands edges until the full-width
        // sweeps and produces wide, non-local matchings. Overlapping
        // starts cost extra `band_can_match` probes (cheap, and most
        // windows fail it) but let every aligned row band be tried.
        for r in 0..m {
            let hi = (r + w).min(m - 1);
            let band = mg.band_edges((r, hi));
            if band_can_match(mg, &band) {
                found.extend(mg.extract_perfect_matchings(&band));
            }
        }
        // Once the window covers all rows the remaining graph is regular,
        // so the final sweep must finish; the guard below documents the
        // invariant rather than handling a reachable state.
        if w >= m && found.len() < m {
            unreachable!("full-width window must exhaust the regular multigraph");
        }
        w = if w == 0 { 1 } else { w * 2 };
    }
    found
}

/// Redistribute parallel edges between matchings to concentrate each
/// matching's rows.
///
/// A perfect matching fixes which `(j, j')` column pairs it uses, but when
/// several qubits share a column pair (parallel edges), *which* qubit each
/// matching takes is a free choice — and the greedy extraction makes it
/// arbitrarily, which is what lets late, wide-window matchings span nearly
/// the whole grid. Swapping parallel edges between two matchings keeps
/// both perfectly matched (same column pairs), so within every parallel
/// class the rows can be reassigned at will. This pass repeatedly sorts
/// each class's rows against its user matchings' median rows until fixed
/// point, pulling every matching toward one compact row band and therefore
/// lowering the `Δ` its staging row must pay.
fn rebalance_parallel_edges(mg: &BipartiteMultigraph, matchings: &mut [Vec<EdgeId>]) {
    use std::collections::HashMap;

    /// Slots `(matching index, position)` sharing a `(left, right)` column
    /// pair, plus the interchangeable edge ids currently filling them.
    type ParallelClass = (Vec<(usize, usize)>, Vec<EdgeId>);

    // Parallel classes: all extracted edges grouped by (left, right).
    let mut classes: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (k, matching) in matchings.iter().enumerate() {
        for (pos, &id) in matching.iter().enumerate() {
            let e = mg.edge(id);
            classes.entry((e.left, e.right)).or_default().push((k, pos));
        }
    }
    let mut classes: Vec<ParallelClass> = {
        let mut v: Vec<_> = classes.into_values().collect();
        // Deterministic processing order.
        v.sort_unstable_by_key(|users| users[0]);
        v.into_iter()
            .map(|users| {
                let ids = users.iter().map(|&(k, pos)| matchings[k][pos]).collect();
                (users, ids)
            })
            .collect()
    };

    let median = |rows: &mut Vec<usize>| -> usize {
        rows.sort_unstable();
        rows[rows.len() / 2]
    };
    let center_of = |matching: &[EdgeId]| -> usize {
        let mut rows: Vec<usize> = matching
            .iter()
            .flat_map(|&id| {
                let e = mg.edge(id);
                [e.src_row, e.dst_row]
            })
            .collect();
        median(&mut rows)
    };

    for _ in 0..8 {
        let centers: Vec<usize> = matchings.iter().map(|m| center_of(m)).collect();
        let mut changed = false;
        for (users, ids) in &mut classes {
            if ids.len() < 2 {
                continue;
            }
            // Monotone pairing: class rows in row order against user
            // matchings in center order.
            let mut by_center: Vec<(usize, usize)> = users.clone();
            by_center.sort_unstable_by_key(|&(k, _)| (centers[k], k));
            ids.sort_unstable_by_key(|&id| {
                let e = mg.edge(id);
                (e.src_row + e.dst_row, id)
            });
            for (&(k, pos), &id) in by_center.iter().zip(ids.iter()) {
                if matchings[k][pos] != id {
                    matchings[k][pos] = id;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// The locality metric of §IV-A: `Δ(M, r) = Σ_j |i_j − r| + Σ_j |i'_j − r|`
/// over the edges (qubits) of matching `M`.
pub fn delta_metric(mg: &BipartiteMultigraph, matching: &[EdgeId], row: usize) -> u64 {
    matching
        .iter()
        .map(|&id| {
            let e = mg.edge(id);
            (e.src_row.abs_diff(row) + e.dst_row.abs_diff(row)) as u64
        })
        .sum()
}

/// Lines 19–23: assign matchings to staging rows and build the σ's.
fn build_sigmas(
    grid: Grid,
    mg: &BipartiteMultigraph,
    matchings: &[Vec<EdgeId>],
    assignment: AssignmentStrategy,
) -> Vec<Vec<usize>> {
    let m = grid.rows();
    let n = grid.cols();
    debug_assert_eq!(matchings.len(), m);

    let row_of: Vec<usize> = match assignment {
        AssignmentStrategy::InOrder => (0..m).collect(),
        AssignmentStrategy::Bottleneck => {
            let weights: Vec<Vec<u64>> = matchings
                .iter()
                .map(|mt| (0..m).map(|r| delta_metric(mg, mt, r)).collect())
                .collect();
            let res = bottleneck_assignment(&weights);
            debug_assert_eq!(
                res.cardinality, m,
                "H is complete bipartite; must be perfect"
            );
            // The bottleneck solver returns *an arbitrary* assignment
            // achieving the optimal bottleneck; break ties by minimizing
            // the total Δ among assignments that respect the cap, so the
            // non-critical matchings also stage as close to home as they
            // can. Capped pairs get a penalty weight large enough never to
            // be chosen while a cap-respecting assignment exists (one does:
            // the bottleneck solver just found it).
            const PENALTY: i64 = 1 << 40;
            let capped: Vec<Vec<i64>> = weights
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&w| {
                            if w <= res.bottleneck {
                                w as i64
                            } else {
                                PENALTY
                            }
                        })
                        .collect()
                })
                .collect();
            let (assignment, total) = min_sum_assignment(&capped);
            debug_assert!(total < PENALTY, "cap-respecting assignment must exist");
            assignment
        }
        AssignmentStrategy::MinSum => {
            let cost: Vec<Vec<i64>> = matchings
                .iter()
                .map(|mt| (0..m).map(|r| delta_metric(mg, mt, r) as i64).collect())
                .collect();
            min_sum_assignment(&cost).0
        }
    };

    let mut sigmas = vec![vec![usize::MAX; m]; n];
    for (k, matching) in matchings.iter().enumerate() {
        let r = row_of[k];
        for &id in matching {
            let e = mg.edge(id);
            debug_assert_eq!(sigmas[e.left][e.src_row], usize::MAX);
            sigmas[e.left][e.src_row] = r;
        }
    }
    sigmas
}

/// Algorithm 2, `LocalGridRoute(G, π)`: locality-aware matchings, row
/// assignment and 3-phase routing. Does *not* try the transpose; see
/// [`main_procedure`].
pub fn local_grid_route_single(
    grid: Grid,
    pi: &Permutation,
    opts: &LocalRouteOptions,
) -> RoutingSchedule {
    assert_eq!(grid.len(), pi.len(), "permutation size must match grid");
    let sigmas = qroute_obs::trace::span("locality.matchings", || {
        let mut mg = build_column_multigraph(grid, pi);
        let mut matchings = find_local_matchings(grid, &mut mg, opts.window);
        rebalance_parallel_edges(&mg, &mut matchings);
        build_sigmas(grid, &mg, &matchings, opts.assignment)
    });
    qroute_obs::trace::span("locality.line_routing", || {
        grid_route_with_sigmas(grid, pi, &sigmas, opts.line)
    })
}

/// Algorithm 1, the main procedure: run `LocalGridRoute` on `(G, π)` and —
/// when `opts.try_transpose` — on `(Gᵀ, πᵀ)`, returning the shallower
/// schedule (in original vertex ids), optionally compacted.
pub fn main_procedure(grid: Grid, pi: &Permutation, opts: &LocalRouteOptions) -> RoutingSchedule {
    let mut best = local_grid_route_single(grid, pi, opts);
    if opts.try_transpose {
        let (gt, pit) = transpose_instance(grid, pi);
        let alt = untranspose_schedule(gt, local_grid_route_single(gt, &pit, opts));
        if alt.depth() < best.depth() {
            best = alt;
        }
    }
    if opts.compact {
        best = best.compact(grid.len());
    }
    best
}

/// Convenience alias for [`main_procedure`] with default options.
pub fn local_grid_route(grid: Grid, pi: &Permutation) -> RoutingSchedule {
    main_procedure(grid, pi, &LocalRouteOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::{generators, metrics};

    fn all_option_sets() -> Vec<LocalRouteOptions> {
        let mut out = Vec::new();
        for assignment in [
            AssignmentStrategy::Bottleneck,
            AssignmentStrategy::MinSum,
            AssignmentStrategy::InOrder,
        ] {
            for window in [WindowMode::Doubling, WindowMode::FullOnly] {
                for compact in [false, true] {
                    out.push(LocalRouteOptions {
                        assignment,
                        window,
                        line: LineStrategy::BestParity,
                        compact,
                        try_transpose: true,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn identity_is_free() {
        let grid = Grid::new(5, 4);
        let s = local_grid_route(grid, &Permutation::identity(20));
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn routes_random_permutations_all_options() {
        for (m, n) in [(1, 1), (1, 6), (6, 1), (2, 3), (4, 4), (5, 3)] {
            let grid = Grid::new(m, n);
            let pi = generators::random(grid.len(), 31);
            for opts in all_option_sets() {
                let s = main_procedure(grid, &pi, &opts);
                assert!(s.realizes(&pi), "{opts:?} failed on {m}x{n}");
                s.validate_on(&grid.to_graph()).unwrap();
            }
        }
    }

    #[test]
    fn respects_lower_bound() {
        let grid = Grid::new(6, 6);
        for seed in 0..10 {
            let pi = generators::random(36, seed);
            let s = local_grid_route(grid, &pi);
            assert!(s.depth() >= metrics::max_displacement(grid, &pi));
        }
    }

    #[test]
    fn block_local_permutations_route_shallow() {
        // Cycles confined to 2x2 blocks on a big grid must not produce
        // schedules anywhere near the 3-phase worst case.
        let grid = Grid::new(12, 12);
        for seed in 0..5 {
            let pi = generators::block_local(grid, 2, 2, seed);
            let s = local_grid_route(grid, &pi);
            assert!(s.realizes(&pi));
            assert!(
                s.depth() <= 8,
                "block-local permutation took depth {} (seed {seed})",
                s.depth()
            );
        }
    }

    #[test]
    fn local_beats_or_ties_naive_on_block_workloads() {
        use crate::grid_route::{naive_grid_route, NaiveOptions};
        let grid = Grid::new(10, 10);
        let mut local_wins = 0usize;
        for seed in 0..10 {
            let pi = generators::block_local(grid, 3, 3, seed);
            let local = local_grid_route(grid, &pi);
            let naive = naive_grid_route(
                grid,
                &pi,
                &NaiveOptions { compact: true, try_transpose: true, ..Default::default() },
            );
            if local.depth() < naive.depth() {
                local_wins += 1;
            }
        }
        assert!(
            local_wins >= 6,
            "locality-aware won only {local_wins}/10 block-local instances"
        );
    }

    #[test]
    fn paper_options_realize() {
        let grid = Grid::new(7, 5);
        let pi = generators::random(35, 2);
        let s = local_grid_route_single(grid, &pi, &LocalRouteOptions::paper());
        assert!(s.realizes(&pi));
    }

    #[test]
    fn delta_metric_matches_definition() {
        let grid = Grid::new(3, 2);
        // π: swap the two columns, keep rows.
        let mut map = vec![0usize; 6];
        for i in 0..3 {
            map[grid.index(i, 0)] = grid.index(i, 1);
            map[grid.index(i, 1)] = grid.index(i, 0);
        }
        let pi = Permutation::from_vec(map).unwrap();
        let mg = build_column_multigraph(grid, &pi);
        // Take the two edges of row 1 as a matching.
        let band: Vec<_> = mg.band_edges((1, 1));
        assert_eq!(band.len(), 2);
        assert_eq!(delta_metric(&mg, &band, 1), 0);
        assert_eq!(delta_metric(&mg, &band, 0), 4); // both qubits: |1-0|+|1-0|
    }

    #[test]
    fn doubling_search_partitions_all_edges() {
        let grid = Grid::new(6, 4);
        let pi = generators::random(24, 5);
        let mut mg = build_column_multigraph(grid, &pi);
        let ms = find_local_matchings(grid, &mut mg, WindowMode::Doubling);
        assert_eq!(ms.len(), 6);
        let mut ids: Vec<_> = ms.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24, "matchings must partition all mn edges");
        assert_eq!(mg.num_alive(), 0);
    }

    #[test]
    fn skinny_cycles_still_route_correctly() {
        let grid = Grid::new(9, 9);
        let pi = generators::skinny_cycles(grid, 4);
        let s = local_grid_route(grid, &pi);
        assert!(s.realizes(&pi));
    }

    #[test]
    fn transpose_helps_on_tall_grids() {
        // On a 2xN grid with a column-local permutation, routing the
        // transpose (N x 2) can only help or tie; mostly we just check the
        // main procedure picks something valid and no deeper than the
        // single-orientation run.
        let grid = Grid::new(2, 12);
        let pi = generators::random(24, 8);
        let opts = LocalRouteOptions::default();
        let both = main_procedure(grid, &pi, &opts);
        let single = local_grid_route_single(grid, &pi, &opts).compact(24);
        assert!(both.depth() <= single.depth());
    }
}
