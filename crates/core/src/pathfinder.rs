//! Congestion-negotiated per-token routing (the PathFinder idiom).
//!
//! The matching-based routers of the paper pay for full-permutation
//! structure even when almost every token is already home. Cowtan et
//! al. ("On the qubit routing problem") observe that greedy per-token
//! search wins on sparse instances; this module ports the classic
//! *PathFinder* negotiated-congestion loop of McMurchie & Ebeling from
//! FPGA routing to token routing:
//!
//! 1. every misplaced token independently plans a shortest path to its
//!    target with A* (the [`DistanceOracle`] is the admissible
//!    heuristic — every step costs at least 1);
//! 2. vertices claimed by more than one path are *contested*: the
//!    contested token is ripped up, the contested vertices' **history
//!    cost** rises, and the token re-plans in the next round (so
//!    persistent congestion is priced in and paths spread out);
//! 3. paths that survive negotiation are *committed* and executed as a
//!    transport — a forward swap walk followed by a restoring walk —
//!    that exchanges the path's endpoints and provably restores every
//!    interior vertex.
//!
//! Committed paths within a round are pairwise vertex-disjoint, so the
//! greedy ASAP pass ([`RoutingSchedule::compact_swaps`]) executes them
//! in parallel layers. Each transport homes at least one token — two
//! when the evicted occupant's home is the freed source, as in a
//! 2-cycle — and never unhomes another (a transport's destination
//! always holds a misplaced token, and interiors are restored), so the
//! misplaced count strictly
//! decreases every round and the loop terminates in at most `n` rounds.
//! A configurable round cap bounds the worst case anyway: on cap, the
//! *residual* permutation is handed to the ATS baseline
//! ([`approximate_token_swapping_with`]), which terminates
//! unconditionally on connected graphs.
//!
//! The router is topology-generic: it only needs a connected [`Graph`]
//! and a consistent [`DistanceOracle`], so it routes defective grids,
//! heavy hexagons, brick walls and tori through the same
//! routing-frame path as ATS.

use crate::schedule::RoutingSchedule;
use crate::token_swap::approximate_token_swapping_with;
use qroute_perm::Permutation;
use qroute_topology::{dist, DistanceOracle, Graph, Grid, GridOracle};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// In-round rip-up attempts per token before it defers to the next
/// negotiation round.
const ROUND_RETRIES: u32 = 1;

/// Tuning knobs for the negotiation loop. `Default` is the
/// configuration benchmarked as `RouterKind::Pathfinder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathfinderOptions {
    /// Hard cap on negotiation rounds before the residual permutation
    /// falls back to ATS. `0` selects the automatic cap
    /// `4·⌈√n⌉ + 32`, which comfortably covers every instance the
    /// progress argument admits while bounding adversarial blowups.
    pub max_rounds: usize,
    /// How much a contested vertex's history cost grows per rip-up.
    /// Larger values spread paths faster but may detour more than
    /// necessary.
    pub history_increment: u32,
    /// Present-congestion surcharge for stepping onto a vertex already
    /// claimed by a committed path this round. A* prefers a detour of
    /// up to this many extra steps over crossing a claimed vertex.
    pub claim_penalty: u32,
    /// Surcharge (per marker) for stepping onto the current position or
    /// the home of a still-pending token. A transport crossing a pending
    /// token's endpoint raises that vertex's release layer and therefore
    /// delays the *entire* later transport — a cost the plain layer-time
    /// model cannot see, because a token's own start time is fixed at
    /// `avail[src]` and never subject to search.
    pub pending_penalty: u32,
}

impl Default for PathfinderOptions {
    fn default() -> PathfinderOptions {
        PathfinderOptions {
            max_rounds: 0,
            history_increment: 1,
            claim_penalty: 2,
            pending_penalty: 2,
        }
    }
}

impl PathfinderOptions {
    fn round_cap(&self, n: usize) -> usize {
        if self.max_rounds != 0 {
            return self.max_rounds;
        }
        let isqrt = (n as f64).sqrt().ceil() as usize;
        4 * isqrt + 32
    }
}

/// The per-vertex cost fields a negotiation-round search reads, borrowed
/// together so [`AstarScratch::search`] stays call-site friendly.
struct RoundCosts<'a> {
    history: &'a [u32],
    avail: &'a [u64],
    claimed: &'a [bool],
    /// Endpoint multiplicity: how many still-pending tokens have their
    /// current position or home on each vertex.
    blocked: &'a [u32],
    claim_penalty: u32,
    pending_penalty: u32,
}

/// Reusable A* scratch space with epoch stamping, so per-token searches
/// never pay an `O(n)` clear.
struct AstarScratch {
    g: Vec<u64>,
    parent: Vec<usize>,
    g_epoch: Vec<u32>,
    closed: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<(Reverse<u64>, usize)>,
    /// Lifetime count of heap pops, for per-round trace deltas.
    pops: u64,
}

impl AstarScratch {
    fn new(n: usize) -> AstarScratch {
        AstarScratch {
            g: vec![0; n],
            parent: vec![usize::MAX; n],
            g_epoch: vec![0; n],
            closed: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            pops: 0,
        }
    }

    /// Cheapest path `src → dst` in *layer time*: `g[w]` is the earliest
    /// schedule layer by which the travelling token can have arrived at
    /// `w`, given the per-vertex release times (`avail`, mirroring the
    /// greedy ASAP rule of [`RoutingSchedule::compact_swaps`]) of every
    /// transport committed so far — stepping onto a busy corridor prices
    /// its true serialization cost. Negotiation surcharges
    /// (`history[w]`, `claim_penalty·claimed[w]`, and
    /// `pending_penalty·blocked[w]` for endpoints of still-pending
    /// tokens) are added on top. The oracle's true distance is
    /// admissible because every further step costs at least one layer.
    /// Returns the vertex sequence `src..=dst`.
    fn search(
        &mut self,
        graph: &Graph,
        oracle: &impl DistanceOracle,
        costs: &RoundCosts<'_>,
        src: usize,
        dst: usize,
    ) -> Vec<usize> {
        let avail = costs.avail;
        self.epoch += 1;
        self.heap.clear();
        self.g[src] = avail[src];
        self.g_epoch[src] = self.epoch;
        self.parent[src] = usize::MAX;
        self.heap
            .push((Reverse(avail[src] + oracle.dist(src, dst) as u64), src));
        while let Some((_, v)) = self.heap.pop() {
            self.pops += 1;
            if self.closed[v] == self.epoch {
                continue;
            }
            self.closed[v] = self.epoch;
            if v == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while self.parent[cur] != usize::MAX {
                    cur = self.parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            for w in graph.neighbors(v) {
                // The swap onto `w` can only run once both the traveller
                // and `w` are free — waiting behind a committed
                // transport costs exactly the layers it still occupies.
                let ng = self.g[v].max(avail[w])
                    + 1
                    + u64::from(costs.history[w])
                    + if costs.claimed[w] {
                        u64::from(costs.claim_penalty)
                    } else {
                        0
                    }
                    + if w == dst {
                        // Our own target inevitably carries our and its
                        // occupant's endpoint markers; arriving is the
                        // point, not a detour-worthy nuisance.
                        0
                    } else {
                        u64::from(costs.pending_penalty) * u64::from(costs.blocked[w])
                    };
                if self.g_epoch[w] != self.epoch || ng < self.g[w] {
                    self.g[w] = ng;
                    self.g_epoch[w] = self.epoch;
                    self.parent[w] = v;
                    self.heap
                        .push((Reverse(ng + oracle.dist(w, dst) as u64), w));
                }
            }
        }
        unreachable!("A* target {dst} unreachable from {src}; connectivity was checked upfront")
    }
}

/// Append the transport executing path `p₀ … p_k`: the occupants of `p₀`
/// and `p_k` bubble toward each other simultaneously, pass with one
/// shared swap, and keep bubbling to the far ends. Net effect: the
/// contents of `p₀` and `p_k` exchange and every interior vertex is
/// restored (each interior token is crossed once by each traveller,
/// shifting it one step each way) — `2k−1` swaps total, like the naive
/// forward-then-restore chain, but the travellers move on vertex-disjoint
/// edges, so [`RoutingSchedule::compact_swaps`] packs the transport into
/// `≈ k+1` layers instead of `2k−1`.
fn emit_transport(path: &[usize], swaps: &mut Vec<(usize, usize)>, avail: &mut [u64]) {
    let mut push = |u: usize, v: usize, swaps: &mut Vec<(usize, usize)>| {
        swaps.push((u, v));
        // Mirror the greedy ASAP rule of `compact_swaps`, so `avail`
        // stays an exact account of when each vertex goes quiet.
        let t = avail[u].max(avail[v]);
        avail[u] = t + 1;
        avail[v] = t + 1;
    };
    let k = path.len() - 1;
    // `a` = left traveller's index on the path, `b` = right traveller's.
    let (mut a, mut b) = (0usize, k);
    while a < k || b > 0 {
        if a + 1 == b {
            // Adjacent: one swap moves both travellers past each other.
            push(path[a], path[b], swaps);
            a += 1;
            b -= 1;
        } else if a + 2 == b {
            // Edges would collide at `path[a+1]`: advance one side, the
            // shared pass happens next iteration.
            push(path[a], path[a + 1], swaps);
            a += 1;
        } else {
            // Disjoint edges (or one traveller already home): these
            // swaps compact into the same layer.
            if a < k {
                push(path[a], path[a + 1], swaps);
                a += 1;
            }
            if b > 0 {
                push(path[b - 1], path[b], swaps);
                b -= 1;
            }
        }
    }
}

/// Route `π` on a connected `graph` with negotiated-congestion per-token
/// search, falling back to ATS for any residual past the round cap.
///
/// The oracle must answer shortest-path distances of `graph`; it steers
/// both the A* heuristic and the round-priority order, so an
/// inconsistent oracle degrades quality (the realized permutation stays
/// correct — legality never depends on the oracle).
///
/// # Panics
/// Panics when `π`, `graph` and `oracle` disagree in size, or when some
/// destination is unreachable (disconnected graph).
pub fn pathfinder_route_with(
    graph: &Graph,
    oracle: &impl DistanceOracle,
    pi: &Permutation,
    opts: &PathfinderOptions,
) -> RoutingSchedule {
    let n = graph.len();
    assert_eq!(pi.len(), n, "permutation size must match graph");
    assert_eq!(oracle.len(), n, "oracle size must match graph");
    for v in 0..n {
        assert_ne!(
            oracle.dist(v, pi.apply(v)),
            dist::UNREACHABLE,
            "destination of {v} unreachable; pathfinder needs a connected graph"
        );
    }

    // Token `t` starts at vertex `t` and must reach `π(t)`.
    let mut at: Vec<usize> = (0..n).collect(); // token → current vertex
    let mut tok: Vec<usize> = (0..n).collect(); // vertex → current token
    let mut history: Vec<u32> = vec![0; n];
    // Per-vertex release layer of everything committed so far, mirroring
    // the ASAP compaction: a path crossing a busy corridor pays exactly
    // the layers it would wait, so searches steer disjoint whenever a
    // detour is cheaper than queueing.
    let mut avail: Vec<u64> = vec![0; n];
    let mut claimed: Vec<bool> = vec![false; n];
    let mut blocked: Vec<u32> = vec![0; n];
    let mut swaps: Vec<(usize, usize)> = Vec::new();
    let mut scratch = AstarScratch::new(n);
    let cap = opts.round_cap(n);

    let mut rounds = 0;
    loop {
        let mut pending: Vec<usize> = (0..n).filter(|&t| at[t] != pi.apply(t)).collect();
        if pending.is_empty() {
            break;
        }
        if rounds >= cap {
            qroute_obs::trace::event(
                "pathfinder.fallback",
                &[
                    ("round", qroute_obs::FieldValue::U64(rounds as u64)),
                    (
                        "residual",
                        qroute_obs::FieldValue::U64(pending.len() as u64),
                    ),
                ],
            );
            // Hand the residual to ATS: the token at `v` still has to
            // reach `π(tok[v])`, which is a permutation of positions.
            let residual =
                Permutation::from_vec_unchecked((0..n).map(|v| pi.apply(tok[v])).collect());
            let fallback = approximate_token_swapping_with(graph, oracle, &residual);
            swaps.extend_from_slice(&fallback.serial_swaps);
            break;
        }
        rounds += 1;
        crate::budget::checkpoint();

        // Deterministic negotiation order: closest token first, ties by
        // token id. Short hops commit cheaply and long hauls negotiate
        // around them.
        pending.sort_by_key(|&t| (oracle.dist(at[t], pi.apply(t)), t));
        claimed.iter_mut().for_each(|c| *c = false);
        // Mark every pending token's position and home: a transport
        // stepping on one raises its release layer and stalls the whole
        // later transport, so searches should pay to avoid them.
        blocked.iter_mut().for_each(|b| *b = 0);
        for &t in &pending {
            blocked[at[t]] += 1;
            blocked[pi.apply(t)] += 1;
        }
        let mut queue: VecDeque<(usize, u32)> = pending.iter().map(|&t| (t, 0)).collect();
        let round_pops_base = scratch.pops;
        let mut ripups: u64 = 0;
        while let Some((t, tries)) = queue.pop_front() {
            let (src, dst) = (at[t], pi.apply(t));
            if src == dst {
                // Homed mid-round by an earlier transport's endpoint
                // exchange (its 2-cycle partner): nothing to negotiate.
                continue;
            }
            let costs = RoundCosts {
                history: &history,
                avail: &avail,
                claimed: &claimed,
                blocked: &blocked,
                claim_penalty: opts.claim_penalty,
                pending_penalty: opts.pending_penalty,
            };
            let path = scratch.search(graph, oracle, &costs, src, dst);
            if path.iter().any(|&v| claimed[v]) {
                // Contested: rip up and raise the price of the contested
                // vertices. The token retries *within* the round — the
                // claim surcharge now steers it onto a disjoint detour
                // that commits into the same parallel layers — and only
                // drops to the next round once its in-round retry budget
                // is spent. (The first token of a round always commits —
                // nothing is claimed yet — so every round makes
                // progress.)
                ripups += 1;
                for &v in &path {
                    if claimed[v] {
                        history[v] = history[v].saturating_add(opts.history_increment);
                    }
                }
                if tries + 1 < ROUND_RETRIES {
                    queue.push_back((t, tries + 1));
                }
                continue;
            }
            for &v in &path {
                claimed[v] = true;
            }
            emit_transport(&path, &mut swaps, &mut avail);
            // The transport exchanges the endpoint occupants and
            // restores every interior vertex. The destination's
            // occupant is always misplaced (a homed token there would
            // share `t`'s target), so no commit ever unhomes a token.
            let evicted = tok[dst];
            tok[dst] = t;
            at[t] = dst;
            tok[src] = evicted;
            at[evicted] = src;
            // Keep the endpoint markers in sync: `t` is homed (drop its
            // position and home marks), the evicted occupant's position
            // moved `dst → src` — and when that homes it too (the
            // 2-cycle case), its home mark at `src` goes as well.
            blocked[src] -= 1;
            blocked[dst] -= 2;
            if pi.apply(evicted) == src {
                blocked[src] -= 1;
            } else {
                blocked[src] += 1;
            }
        }
        if qroute_obs::trace::armed() {
            // The `O(n)` history scan only runs with a subscriber armed.
            let max_history = history.iter().copied().max().unwrap_or(0);
            qroute_obs::trace::event(
                "pathfinder.round",
                &[
                    ("round", qroute_obs::FieldValue::U64(rounds as u64)),
                    (
                        "pops",
                        qroute_obs::FieldValue::U64(scratch.pops - round_pops_base),
                    ),
                    ("ripups", qroute_obs::FieldValue::U64(ripups)),
                    (
                        "max_history",
                        qroute_obs::FieldValue::U64(u64::from(max_history)),
                    ),
                    ("pending", qroute_obs::FieldValue::U64(pending.len() as u64)),
                ],
            );
        }
    }

    RoutingSchedule::compact_swaps(n, swaps)
}

/// [`pathfinder_route_with`] on a full grid with the `O(1)` closed-form
/// [`GridOracle`] — the `RouterKind::Pathfinder` grid entry point.
pub fn pathfinder_route_grid(
    grid: Grid,
    pi: &Permutation,
    opts: &PathfinderOptions,
) -> RoutingSchedule {
    let graph = grid.to_graph();
    pathfinder_route_with(&graph, &GridOracle::new(grid), pi, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::partial::Completion;
    use qroute_perm::{generators, PartialPermutation};

    fn route(grid: Grid, pi: &Permutation) -> RoutingSchedule {
        pathfinder_route_grid(grid, pi, &PathfinderOptions::default())
    }

    #[test]
    fn identity_routes_to_empty_schedule() {
        let grid = Grid::new(4, 4);
        let s = route(grid, &Permutation::identity(16));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.size(), 0);
    }

    #[test]
    fn single_swap_routes_in_one_layer() {
        let grid = Grid::new(3, 3);
        let mut table: Vec<usize> = (0..9).collect();
        table.swap(0, 1);
        let pi = Permutation::from_vec(table).unwrap();
        let s = route(grid, &pi);
        assert!(s.realizes(&pi));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.size(), 1);
    }

    #[test]
    fn transport_exchanges_endpoints_and_restores_interior() {
        // One long 2-cycle across a path-shaped grid: 0 ↔ 4 on a 1×5
        // grid. The transport must cost 2·4−1 = 7 swaps and leave
        // vertices 1..=3 untouched.
        let grid = Grid::new(1, 5);
        let pi = Permutation::from_vec(vec![4, 1, 2, 3, 0]).unwrap();
        let s = route(grid, &pi);
        assert!(s.realizes(&pi));
        assert_eq!(s.size(), 7);
    }

    #[test]
    fn realizes_every_class_on_small_grids() {
        for (rows, cols) in [(2, 4), (3, 3), (4, 5), (6, 5)] {
            let grid = Grid::new(rows, cols);
            let graph = grid.to_graph();
            let n = grid.len();
            let workloads = [
                generators::random(n, 1),
                generators::random(n, 2),
                generators::reversal(n),
                generators::block_local(grid, 2, 2, 3),
                generators::skinny_cycles(grid, 4),
            ];
            for (k, pi) in workloads.iter().enumerate() {
                let s = route(grid, pi);
                assert!(s.realizes(pi), "{rows}x{cols} workload {k}");
                s.validate_on(&graph).unwrap();
            }
        }
    }

    #[test]
    fn same_input_gives_byte_identical_schedules() {
        let grid = Grid::new(8, 8);
        for seed in 0..4 {
            let pi = generators::random(64, seed);
            let a = route(grid, &pi);
            let b = route(grid, &pi);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn tiny_round_cap_falls_back_to_ats_and_still_realizes() {
        let grid = Grid::new(6, 6);
        let graph = grid.to_graph();
        let opts = PathfinderOptions { max_rounds: 1, ..Default::default() };
        for seed in 0..4 {
            let pi = generators::random(36, seed);
            let s = pathfinder_route_grid(grid, &pi, &opts);
            assert!(s.realizes(&pi), "seed {seed}");
            s.validate_on(&graph).unwrap();
        }
    }

    #[test]
    fn sparse_partial_permutations_route_shallow() {
        // A partial permutation pinning two short 2-cycles, completed
        // with fixed points: depth must scale with the pinned pairs'
        // distance, not with the side of the grid.
        let grid = Grid::new(16, 16);
        let mut partial = PartialPermutation::new(256);
        // (r0,c0)=(2,2) ↔ (2,5) and (10,10) ↔ (13,10): distance 3 each.
        let pairs = [(2 * 16 + 2, 2 * 16 + 5), (10 * 16 + 10, 13 * 16 + 10)];
        for (u, v) in pairs {
            partial.pin(u, v).unwrap();
            partial.pin(v, u).unwrap();
        }
        let pi = partial.complete(&Completion::StayInPlace);
        let s = route(grid, &pi);
        assert!(s.realizes(&pi));
        // Each transport is 2·3−1 = 5 swaps; the pairs are disjoint so
        // they parallelize. Matching-based routers pay Θ(side) here.
        assert!(
            s.depth() <= 5,
            "depth {} should not scale with side",
            s.depth()
        );
    }

    #[test]
    fn partial_permutation_on_a_defective_grid_routes_around_holes() {
        use crate::GridRouter;
        use qroute_topology::Topology;
        // Kill the straight corridor between the pinned pair: the
        // negotiated search must detour around the dead vertices and
        // still realize the permutation legally.
        let grid = Grid::new(6, 6);
        // (2,0) ↔ (2,5) with (2,2) and (2,3) dead.
        let topology = Topology::grid_with_defects(grid, &[2 * 6 + 2, 2 * 6 + 3], &[]).unwrap();
        let mut partial = PartialPermutation::new(36);
        partial.pin(2 * 6, 2 * 6 + 5).unwrap();
        partial.pin(2 * 6 + 5, 2 * 6).unwrap();
        let pi = partial.complete(&Completion::StayInPlace);
        let s = crate::router::RouterKind::pathfinder()
            .route_on(&topology, &pi)
            .unwrap();
        assert!(s.realizes(&pi));
        s.validate_on(&topology.graph()).unwrap();
        // The alive detour has length 7 (down-across-up), so the
        // transport is 13 swaps bubbling into ≈ 8 layers — nowhere near
        // a full-grid sweep, and crucially it terminates without
        // touching the dead corridor.
        assert!(
            s.depth() <= 10,
            "depth {} should track the detour",
            s.depth()
        );
    }

    #[test]
    fn congestion_negotiation_spreads_crossing_paths() {
        // Four tokens crossing the same center of a 5×5 grid. Whatever
        // the negotiation does, the result must stay legal and the
        // depth bounded well under the serial sum of transports.
        let grid = Grid::new(5, 5);
        let mut table: Vec<usize> = (0..25).collect();
        // corners cycle: TL→TR→BR→BL→TL (all shortest paths cross the
        // middle region).
        let (tl, tr, br, bl) = (0, 4, 24, 20);
        table[tl] = tr;
        table[tr] = br;
        table[br] = bl;
        table[bl] = tl;
        let pi = Permutation::from_vec(table).unwrap();
        let s = route(grid, &pi);
        assert!(s.realizes(&pi));
        s.validate_on(&grid.to_graph()).unwrap();
        // Serial execution of four 7-swap transports would be depth 28.
        assert!(s.depth() < 28, "negotiation should recover parallelism");
    }
}
