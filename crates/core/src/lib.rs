//! # qroute-core
//!
//! The paper's primary contribution: **locality-aware qubit routing via
//! matchings for grid and Cartesian-product ("grid-like") architectures**,
//! plus the baselines it is evaluated against.
//!
//! Routing problem (§II): given a coupling graph `G` and a permutation `π`
//! on its vertices, produce a sequence of *matchings* of `G`; each matching
//! is a layer of disjoint SWAP gates executed in parallel, and after all
//! layers the token starting at `v` must sit at `π(v)`. The objective is to
//! minimize the number of layers (the *depth* added to the physical
//! circuit).
//!
//! Modules:
//!
//! * [`schedule`] — [`SwapLayer`]/[`RoutingSchedule`]: application,
//!   verification, matching-validity checks, and the ASAP depth-compaction
//!   pass shared by all routers.
//! * [`line`](mod@line) — odd–even transposition routing on a path: the primitive
//!   each phase of the 3-phase grid algorithm runs on rows/columns.
//! * [`grid_route`] — `GridRoute(G, π; σ₁,…,σₙ)` (Alon–Chung–Graham
//!   3-phase routing) and the *naive* baseline with arbitrary matchings.
//! * [`local_grid`] — **`LocalGridRoute`** (Algorithm 2: doubling window
//!   search + `Δ` metric + MCBBM row assignment) and the transpose-trying
//!   main procedure (Algorithm 1).
//! * [`token_swap`] — the approximate token swapping (ATS) baseline of
//!   Miltzow et al. (4-approximation) with greedy parallelization, as used
//!   in the transpiler of Childs–Schoute–Unsal that the paper compares
//!   against; plus a simple serial cycle router.
//! * [`product_route`] — the Cartesian-product extension (§IV): 3-phase
//!   routing on `G1 □ G2` with pluggable factor routers (paths, cycles).
//! * [`pathfinder`] — congestion-negotiated per-token A* routing (the
//!   PathFinder rip-up-and-reroute idiom from FPGA routing), built for
//!   sparse partial permutations where the matching-based routers pay
//!   full-permutation cost; falls back to ATS past its round cap.
//! * [`router`] — a uniform [`router::GridRouter`] trait over all of the
//!   above plus the `Hybrid` clamp (§V: locality-aware output replaced by
//!   the naive output whenever the latter is shallower).
//! * [`budget`] — cooperative deadlines/cancellation for long router
//!   calls: serving layers arm a [`RouteBudget`] with
//!   [`budget::with_budget`], routers call [`budget::checkpoint`]
//!   between rounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod exact;
pub mod grid_route;
pub mod line;
pub mod local_grid;
pub mod pathfinder;
pub mod product_route;
pub mod router;
pub mod schedule;
pub mod snake;
pub mod stats;
pub mod token_swap;

pub use budget::{BudgetExceeded, CancelToken, RouteBudget};
pub use local_grid::{AssignmentStrategy, LocalRouteOptions, WindowMode};
pub use pathfinder::{pathfinder_route_grid, pathfinder_route_with, PathfinderOptions};
pub use router::{GridRouter, RouterKind, UnsupportedTopology};
pub use schedule::{RoutingSchedule, ScheduleError, SwapLayer};
pub use stats::{route_timed, schedule_stats, SampleSummary, ScheduleStats, TimedRoute};
