//! The Cartesian-product extension of §IV: 3-phase locality-aware routing
//! on `G1 □ G2` with pluggable factor routers.
//!
//! The grid algorithm only uses two properties of rows/columns: each
//! "column" is a copy of `G1`, each "row" a copy of `G2`, and both factors
//! admit a permutation router. Replacing odd–even transposition with a
//! router for the factor (and `|i − r|` with the factor's graph distance in
//! the `Δ` metric) yields routing for cylinders (`P □ C`), tori (`C □ C`)
//! and any other product. As the paper notes, the locality optimization is
//! most meaningful when the factors are path-like.

use crate::line::route_line_best;
use crate::local_grid::AssignmentStrategy;
use crate::schedule::{RoutingSchedule, SwapLayer};
use qroute_matching::{
    bottleneck_assignment, min_sum_assignment, BipartiteMultigraph, EdgeId, LabeledEdge,
};
use qroute_perm::Permutation;
use qroute_topology::{Cycle, Path, Product};

/// A permutation router for a one-dimensional factor graph.
///
/// `route(targets)` must return rounds of disjoint swaps over factor
/// vertices (each swapped pair must be a factor edge), realizing
/// `targets[p]` = destination of the token at factor vertex `p`.
pub trait FactorRouter {
    /// Number of vertices of the factor graph.
    fn len(&self) -> usize;
    /// `true` when the factor has no vertices (never, for paths/cycles).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Graph distance in the factor.
    fn dist(&self, u: usize, v: usize) -> usize;
    /// Route a permutation of the factor's vertices.
    fn route(&self, targets: &[usize]) -> Vec<Vec<(usize, usize)>>;
}

/// Path factor routed by odd–even transposition.
#[derive(Debug, Clone, Copy)]
pub struct PathFactor(pub Path);

impl FactorRouter for PathFactor {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn dist(&self, u: usize, v: usize) -> usize {
        self.0.dist(u, v)
    }
    fn route(&self, targets: &[usize]) -> Vec<Vec<(usize, usize)>> {
        route_line_best(targets)
    }
}

/// Cycle factor routed by cutting one edge and running odd–even
/// transposition on the remaining path.
///
/// Cut selection is a heuristic: we count, for every cycle edge, how many
/// tokens' shorter arcs cross it, and cut the least-crossed edge (ties to
/// the smallest index); we also try the trivial cut and keep the shallower
/// routing. Any cut yields a correct routing.
#[derive(Debug, Clone, Copy)]
pub struct CycleFactor(pub Cycle);

impl CycleFactor {
    /// Route after cutting the edge `(c, c+1 mod n)`.
    fn route_with_cut(&self, targets: &[usize], cut: usize) -> Vec<Vec<(usize, usize)>> {
        let n = self.0.len();
        // Path order after cutting (c, c+1): c+1, c+2, …, c.
        let start = (cut + 1) % n;
        let to_path = |v: usize| (v + n - start) % n;
        let to_cycle = |p: usize| (p + start) % n;
        let mut path_targets = vec![0usize; n];
        for v in 0..n {
            path_targets[to_path(v)] = to_path(targets[v]);
        }
        route_line_best(&path_targets)
            .into_iter()
            .map(|round| {
                round
                    .into_iter()
                    .map(|(a, b)| (to_cycle(a), to_cycle(b)))
                    .collect()
            })
            .collect()
    }

    fn least_crossed_cut(&self, targets: &[usize]) -> usize {
        let n = self.0.len();
        let mut crossings = vec![0usize; n]; // edge e = (e, e+1 mod n)
        for (v, &t) in targets.iter().enumerate() {
            if v == t {
                continue;
            }
            let fwd = (t + n - v) % n;
            if fwd <= n - fwd {
                // Forward arc v -> t crosses edges v, v+1, …, t-1.
                let mut e = v;
                while e != t {
                    crossings[e] += 1;
                    e = (e + 1) % n;
                }
            } else {
                // Backward arc crosses edges v-1, v-2, …, t.
                let mut e = (v + n - 1) % n;
                loop {
                    crossings[e] += 1;
                    if e == t {
                        break;
                    }
                    e = (e + n - 1) % n;
                }
            }
        }
        (0..n).min_by_key(|&e| (crossings[e], e)).unwrap_or(0)
    }
}

impl FactorRouter for CycleFactor {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn dist(&self, u: usize, v: usize) -> usize {
        self.0.dist(u, v)
    }
    fn route(&self, targets: &[usize]) -> Vec<Vec<(usize, usize)>> {
        let best_cut = self.least_crossed_cut(targets);
        let a = self.route_with_cut(targets, best_cut);
        if best_cut == self.len() - 1 {
            return a;
        }
        let b = self.route_with_cut(targets, self.len() - 1);
        if b.len() < a.len() {
            b
        } else {
            a
        }
    }
}

/// Options for [`product_route`].
#[derive(Debug, Clone, Copy)]
pub struct ProductRouteOptions {
    /// Row-assignment strategy for staging.
    pub assignment: AssignmentStrategy,
    /// Use the doubling band search (`true`) or extract matchings from the
    /// whole multigraph (`false`).
    pub doubling_windows: bool,
    /// Apply ASAP depth compaction to the result.
    pub compact: bool,
}

impl Default for ProductRouteOptions {
    fn default() -> ProductRouteOptions {
        ProductRouteOptions {
            assignment: AssignmentStrategy::Bottleneck,
            doubling_windows: true,
            compact: true,
        }
    }
}

fn band_can_match(mg: &BipartiteMultigraph, band: &[EdgeId]) -> bool {
    let n = mg.cols();
    if band.len() < n {
        return false;
    }
    let mut left = vec![false; n];
    let mut right = vec![false; n];
    let (mut lc, mut rc) = (0, 0);
    for &id in band {
        let e = mg.edge(id);
        if !left[e.left] {
            left[e.left] = true;
            lc += 1;
        }
        if !right[e.right] {
            right[e.right] = true;
            rc += 1;
        }
    }
    lc == n && rc == n
}

/// Locality-aware 3-phase routing on `G1 □ G2`.
///
/// `f1` routes within copies of `G1` (the "columns", indexed by the second
/// coordinate); `f2` routes within copies of `G2` (the "rows").
///
/// # Panics
/// Panics when factor sizes disagree with the product or the permutation.
pub fn product_route<F1: FactorRouter, F2: FactorRouter>(
    product: &Product,
    f1: &F1,
    f2: &F2,
    pi: &Permutation,
    opts: &ProductRouteOptions,
) -> RoutingSchedule {
    let m = f1.len();
    let n = f2.len();
    assert_eq!(m, product.factor1().len(), "f1 size mismatch");
    assert_eq!(n, product.factor2().len(), "f2 size mismatch");
    assert_eq!(pi.len(), product.len(), "permutation size mismatch");

    // Column multigraph over second coordinates; labels are first
    // coordinates.
    let mut mg = BipartiteMultigraph::new(n);
    for u in 0..m {
        for v in 0..n {
            let (up, vp) = product.coords(pi.apply(product.index(u, v)));
            mg.add_edge(LabeledEdge { left: v, right: vp, src_row: u, dst_row: up });
        }
    }

    // Matching search (bands over first-coordinate indices; for path-like
    // factors index order is the natural linear order).
    let mut matchings: Vec<Vec<EdgeId>> = Vec::with_capacity(m);
    if opts.doubling_windows {
        let mut w = 0usize;
        while matchings.len() < m {
            let mut r = 0usize;
            while r < m {
                let hi = (r + w).min(m - 1);
                let band = mg.band_edges((r, hi));
                if band_can_match(&mg, &band) {
                    matchings.extend(mg.extract_perfect_matchings(&band));
                }
                r += w + 1;
            }
            w = if w == 0 { 1 } else { w * 2 };
        }
    } else {
        let all = mg.alive_edges();
        matchings = mg.extract_perfect_matchings(&all);
    }
    assert_eq!(
        matchings.len(),
        m,
        "regular multigraph must yield m matchings"
    );

    // Δ with factor-1 distances.
    let delta = |matching: &[EdgeId], r: usize| -> u64 {
        matching
            .iter()
            .map(|&id| {
                let e = mg.edge(id);
                (f1.dist(e.src_row, r) + f1.dist(e.dst_row, r)) as u64
            })
            .sum()
    };
    let row_of: Vec<usize> = match opts.assignment {
        AssignmentStrategy::InOrder => (0..m).collect(),
        AssignmentStrategy::Bottleneck => {
            let weights: Vec<Vec<u64>> = matchings
                .iter()
                .map(|mt| (0..m).map(|r| delta(mt, r)).collect())
                .collect();
            bottleneck_assignment(&weights)
                .assignment
                .into_iter()
                .map(|r| r.expect("complete H has a perfect assignment"))
                .collect()
        }
        AssignmentStrategy::MinSum => {
            let cost: Vec<Vec<i64>> = matchings
                .iter()
                .map(|mt| (0..m).map(|r| delta(mt, r) as i64).collect())
                .collect();
            min_sum_assignment(&cost).0
        }
    };

    // σ's and phase targets.
    let mut sigmas = vec![vec![usize::MAX; m]; n];
    for (k, matching) in matchings.iter().enumerate() {
        for &id in matching {
            let e = mg.edge(id);
            sigmas[e.left][e.src_row] = row_of[k];
        }
    }
    let mut row_targets = vec![vec![usize::MAX; n]; m];
    let mut col_targets = vec![vec![usize::MAX; m]; n];
    for v in 0..n {
        for (u, &r) in sigmas[v].iter().enumerate() {
            let (up, vp) = product.coords(pi.apply(product.index(u, v)));
            assert_eq!(row_targets[r][v], usize::MAX, "staging collision");
            row_targets[r][v] = vp;
            assert_eq!(col_targets[vp][r], usize::MAX, "matching property violated");
            col_targets[vp][r] = up;
        }
    }

    // Assemble the three phases.
    let mut schedule = RoutingSchedule::empty();
    let merge = |rounds_per_line: Vec<Vec<Vec<(usize, usize)>>>,
                 line_verts: &dyn Fn(usize) -> Vec<usize>|
     -> RoutingSchedule {
        let depth = rounds_per_line.iter().map(Vec::len).max().unwrap_or(0);
        let mut layers = Vec::with_capacity(depth);
        for k in 0..depth {
            let mut layer = SwapLayer::default();
            for (idx, rounds) in rounds_per_line.iter().enumerate() {
                if let Some(round) = rounds.get(k) {
                    let verts = line_verts(idx);
                    layer
                        .swaps
                        .extend(round.iter().map(|&(a, b)| (verts[a], verts[b])));
                }
            }
            layers.push(layer);
        }
        RoutingSchedule::from_layers(layers)
    };

    // Phase 1: columns by σ.
    let rounds: Vec<_> = (0..n).map(|v| f1.route(&sigmas[v])).collect();
    schedule.extend(merge(rounds, &|v| product.g1_copy(v)));
    // Phase 2: rows to destination columns.
    let rounds: Vec<_> = (0..m).map(|r| f2.route(&row_targets[r])).collect();
    schedule.extend(merge(rounds, &|r| product.g2_copy(r)));
    // Phase 3: columns to destination rows.
    let rounds: Vec<_> = (0..n).map(|v| f1.route(&col_targets[v])).collect();
    schedule.extend(merge(rounds, &|v| product.g1_copy(v)));

    if opts.compact {
        schedule = schedule.compact(product.len());
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::generators;
    use qroute_topology::Grid;

    #[test]
    fn path_product_matches_grid_router_semantics() {
        let (m, n) = (4, 5);
        let product = Product::new(Path::new(m).to_graph(), Path::new(n).to_graph());
        let f1 = PathFactor(Path::new(m));
        let f2 = PathFactor(Path::new(n));
        let graph = product.to_graph();
        for seed in 0..5 {
            let pi = generators::random(m * n, seed);
            let s = product_route(&product, &f1, &f2, &pi, &ProductRouteOptions::default());
            assert!(s.realizes(&pi), "seed {seed}");
            s.validate_on(&graph).unwrap();
        }
    }

    #[test]
    fn grid_and_product_agree_on_depth_scale() {
        // Not necessarily identical schedules, but same algorithm family:
        // depths should be within the 3-phase bound of each other.
        let grid = Grid::new(5, 5);
        let product = Product::new(Path::new(5).to_graph(), Path::new(5).to_graph());
        let f = PathFactor(Path::new(5));
        for seed in 0..5 {
            let pi = generators::random(25, seed);
            let sp = product_route(&product, &f, &f, &pi, &ProductRouteOptions::default());
            let sg = crate::local_grid::local_grid_route_single(
                grid,
                &pi,
                &crate::local_grid::LocalRouteOptions::default(),
            )
            .compact(25);
            assert!(sp.depth() <= 3 * 5, "product depth {}", sp.depth());
            assert!(sg.depth() <= 3 * 5, "grid depth {}", sg.depth());
        }
    }

    #[test]
    fn routes_on_torus() {
        let c1 = Cycle::new(4);
        let c2 = Cycle::new(6);
        let product = Product::new(c1.to_graph(), c2.to_graph());
        let graph = product.to_graph();
        for seed in 0..5 {
            let pi = generators::random(24, seed);
            let s = product_route(
                &product,
                &CycleFactor(c1),
                &CycleFactor(c2),
                &pi,
                &ProductRouteOptions::default(),
            );
            assert!(s.realizes(&pi), "torus seed {seed}");
            s.validate_on(&graph).unwrap();
        }
    }

    #[test]
    fn routes_on_cylinder() {
        let p = Path::new(3);
        let c = Cycle::new(7);
        let product = Product::new(p.to_graph(), c.to_graph());
        let graph = product.to_graph();
        for seed in 0..5 {
            let pi = generators::random(21, seed);
            for opts in [
                ProductRouteOptions::default(),
                ProductRouteOptions {
                    assignment: AssignmentStrategy::MinSum,
                    doubling_windows: false,
                    compact: false,
                },
            ] {
                let s = product_route(&product, &PathFactor(p), &CycleFactor(c), &pi, &opts);
                assert!(s.realizes(&pi), "cylinder seed {seed} opts {opts:?}");
                s.validate_on(&graph).unwrap();
            }
        }
    }

    #[test]
    fn cycle_factor_routes_all_small_permutations() {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        for n in [3, 4, 5] {
            let f = CycleFactor(Cycle::new(n));
            for t in perms(n) {
                let rounds = f.route(&t);
                let mut at: Vec<usize> = (0..n).collect();
                for round in &rounds {
                    let mut used = vec![false; n];
                    for &(a, b) in round {
                        assert_eq!(f.dist(a, b), 1, "swap on non-edge");
                        assert!(!used[a] && !used[b]);
                        used[a] = true;
                        used[b] = true;
                        at.swap(a, b);
                    }
                }
                for (pos, &tok) in at.iter().enumerate() {
                    assert_eq!(t[tok], pos, "targets {t:?}");
                }
            }
        }
    }

    #[test]
    fn cycle_rotation_depth_is_near_the_conservation_bound() {
        // Swaps conserve total signed displacement, so a rotation by +1 on
        // C_n forces some token to travel n-1 steps the other way: depth is
        // at least n-1 no matter the router. The cut router should land
        // within one round of that bound (and never exceed the path bound).
        let n = 16;
        let f = CycleFactor(Cycle::new(n));
        let targets: Vec<usize> = (0..n).map(|v| (v + 1) % n).collect();
        let rounds = f.route(&targets);
        assert!(
            rounds.len() >= n - 1,
            "impossible: beat the conservation bound"
        );
        assert!(rounds.len() <= n, "rotation took {} rounds", rounds.len());
    }

    #[test]
    fn cycle_local_permutation_is_shallow() {
        // Two far-apart adjacent transpositions across the wrap edge: the
        // least-crossed cut avoids separating them.
        let n = 12;
        let f = CycleFactor(Cycle::new(n));
        let mut targets: Vec<usize> = (0..n).collect();
        targets.swap(0, 11); // swap across the wrap edge
        targets.swap(5, 6);
        let rounds = f.route(&targets);
        assert!(
            rounds.len() <= 2,
            "local swaps took {} rounds",
            rounds.len()
        );
    }
}
