//! Exact minimum-depth routing for tiny instances.
//!
//! Computing an optimal matching sequence is NP-hard (Banerjee & Richards,
//! cited as \[2\] by the paper), but tiny instances are exactly solvable by
//! breadth-first search over token configurations, where one step applies
//! any matching of the coupling graph. This gives ground truth for
//! *optimality gap* measurements of every router (the `repro -- optgap`
//! experiment) and for tests.

use crate::schedule::{RoutingSchedule, SwapLayer};
use qroute_perm::Permutation;
use qroute_topology::{Edge, Graph};
use std::collections::HashMap;

/// All non-empty matchings of `graph` (sets of pairwise-disjoint edges),
/// enumerated recursively. Exponential in general — intended for graphs
/// with at most ~12 edges.
pub fn all_matchings(graph: &Graph) -> Vec<Vec<Edge>> {
    let edges = graph.edges();
    let mut out = Vec::new();
    let mut current: Vec<Edge> = Vec::new();
    fn rec(
        k: usize,
        edges: &[Edge],
        used: &mut Vec<bool>,
        current: &mut Vec<Edge>,
        out: &mut Vec<Vec<Edge>>,
    ) {
        if k == edges.len() {
            if !current.is_empty() {
                out.push(current.clone());
            }
            return;
        }
        // Skip edge k.
        rec(k + 1, edges, used, current, out);
        // Take edge k if disjoint.
        let (u, v) = edges[k];
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            current.push((u, v));
            rec(k + 1, edges, used, current, out);
            current.pop();
            used[u] = false;
            used[v] = false;
        }
    }
    let mut used = vec![false; graph.len()];
    rec(0, edges, &mut used, &mut current, &mut out);
    out
}

/// Exact minimum number of swap layers realizing `π` on `graph`, with the
/// witnessing schedule, or `None` if not reachable within `max_depth`
/// layers (only possible for disconnected graphs or a too-small budget).
///
/// Complexity: `O(n! · #matchings)` states in the worst case — keep
/// `graph.len()` at 9 or below.
///
/// # Panics
/// Panics when sizes mismatch or the graph is too large (> 10 vertices).
pub fn optimal_schedule(
    graph: &Graph,
    pi: &Permutation,
    max_depth: usize,
) -> Option<RoutingSchedule> {
    let n = graph.len();
    assert_eq!(pi.len(), n, "permutation size must match graph");
    assert!(n <= 10, "exact search is limited to 10 vertices");

    // Configurations are `at` arrays: at[pos] = token. Start: identity.
    // Goal: token v at π(v), i.e. at[π(v)] = v.
    let start: Vec<u8> = (0..n as u8).collect();
    let mut goal = vec![0u8; n];
    for v in 0..n {
        goal[pi.apply(v)] = v as u8;
    }
    if start == goal {
        return Some(RoutingSchedule::empty());
    }

    let matchings = all_matchings(graph);
    // BFS with parent pointers for schedule reconstruction. States are
    // indexed by discovery order; `seen` maps configurations to indices.
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut cfgs: Vec<Vec<u8>> = vec![start.clone()];
    let mut parents: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX)];
    let mut frontier: Vec<usize> = vec![0];
    seen.insert(start, 0);

    for _depth in 1..=max_depth {
        let mut next: Vec<usize> = Vec::new();
        for &idx in &frontier {
            for (mi, matching) in matchings.iter().enumerate() {
                let mut nc = cfgs[idx].clone();
                for &(u, v) in matching {
                    nc.swap(u, v);
                }
                if seen.contains_key(&nc) {
                    continue;
                }
                let new_idx = cfgs.len();
                seen.insert(nc.clone(), new_idx);
                parents.push((idx, mi));
                let done = nc == goal;
                cfgs.push(nc);
                if done {
                    let mut layers: Vec<SwapLayer> = Vec::new();
                    let mut cur = new_idx;
                    while parents[cur].0 != usize::MAX {
                        let (p, m) = parents[cur];
                        layers.push(SwapLayer::new(matchings[m].clone()));
                        cur = p;
                    }
                    layers.reverse();
                    return Some(RoutingSchedule::from_layers(layers));
                }
                next.push(new_idx);
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    None
}

/// Exact minimum depth (see [`optimal_schedule`]).
pub fn optimal_depth(graph: &Graph, pi: &Permutation, max_depth: usize) -> Option<usize> {
    optimal_schedule(graph, pi, max_depth).map(|s| s.depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::generators;
    use qroute_topology::{Grid, Path};

    #[test]
    fn matchings_of_a_path() {
        // P4 edges: (0,1),(1,2),(2,3). Non-empty matchings:
        // {01},{12},{23},{01,23} = 4.
        let g = Path::new(4).to_graph();
        let ms = all_matchings(&g);
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert!(g.is_matching(m));
        }
    }

    #[test]
    fn identity_is_depth_zero() {
        let g = Grid::new(2, 2).to_graph();
        assert_eq!(optimal_depth(&g, &Permutation::identity(4), 5), Some(0));
    }

    #[test]
    fn single_swap_is_depth_one() {
        let g = Grid::new(2, 2).to_graph();
        let pi = Permutation::from_vec(vec![1, 0, 2, 3]).unwrap();
        assert_eq!(optimal_depth(&g, &pi, 5), Some(1));
    }

    #[test]
    fn double_disjoint_swap_is_still_depth_one() {
        let g = Grid::new(2, 2).to_graph();
        // Swap both horizontal pairs at once.
        let pi = Permutation::from_vec(vec![1, 0, 3, 2]).unwrap();
        assert_eq!(optimal_depth(&g, &pi, 5), Some(1));
    }

    #[test]
    fn four_cycle_rotation_needs_three_layers() {
        // On the 4-cycle (2x2 grid), rotating all four tokens: conservation
        // forces one token backward through 3 edges -> depth 3.
        let grid = Grid::new(2, 2);
        let g = grid.to_graph();
        // Rotation: 0 -> 1 -> 3 -> 2 -> 0 (following grid edges).
        let pi = Permutation::from_vec(vec![1, 3, 0, 2]).unwrap();
        assert_eq!(optimal_depth(&g, &pi, 6), Some(3));
    }

    #[test]
    fn optimal_schedule_realizes_and_validates() {
        let grid = Grid::new(2, 3);
        let g = grid.to_graph();
        for seed in 0..4 {
            let pi = generators::random(6, seed);
            let s = optimal_schedule(&g, &pi, 10).expect("2x3 routes within 10 layers");
            assert!(s.realizes(&pi), "seed {seed}");
            s.validate_on(&g).unwrap();
        }
    }

    #[test]
    fn routers_respect_the_exact_optimum() {
        use crate::router::{GridRouter, RouterKind};
        let grid = Grid::new(2, 3);
        let g = grid.to_graph();
        for seed in 0..4 {
            let pi = generators::random(6, seed);
            let opt = optimal_depth(&g, &pi, 10).unwrap();
            for router in [
                RouterKind::locality_aware(),
                RouterKind::naive(),
                RouterKind::Ats,
            ] {
                let d = router.route(grid, &pi).depth();
                assert!(d >= opt, "{} beat the optimum?!", router.name());
                assert!(
                    d <= 3 * opt.max(1) + 2,
                    "{} is {d} vs optimal {opt} (seed {seed})",
                    router.name()
                );
            }
        }
    }

    #[test]
    fn unreachable_within_budget() {
        let g = Path::new(4).to_graph();
        let pi = generators::reversal(4);
        // Reversal of P4 needs 4 layers (odd-even bound is tight-ish);
        // budget 1 must fail, generous budget succeeds.
        assert_eq!(optimal_depth(&g, &pi, 1), None);
        let d = optimal_depth(&g, &pi, 8).unwrap();
        assert!((3..=4).contains(&d), "reversal depth {d}");
    }
}
