//! Cooperative routing budgets: deadlines and cancellation for long
//! router invocations.
//!
//! Routers are pure synchronous functions — once `route_on` starts there
//! is no natural place to bail out when the caller stops caring (a job's
//! deadline passed, the service is tearing down). Threading an explicit
//! budget parameter through every router signature would churn the whole
//! `GridRouter` surface, so this module takes the cooperative-checkpoint
//! approach instead: a serving layer arms a [`RouteBudget`] around a
//! router call with [`with_budget`], and the routers' round-level loops
//! call the (extremely cheap when unarmed) [`checkpoint`] hook. When the
//! budget is exceeded at a checkpoint, the router unwinds with a typed
//! [`BudgetExceeded`] payload that [`with_budget`] catches and converts
//! into an `Err` — real panics keep propagating untouched.
//!
//! Checkpoints sit at *round boundaries* (one token-swapping phase, one
//! window-doubling sweep, one transpile routing round), so cancellation
//! latency is one round, not one instruction — a deliberate trade that
//! keeps the hook free of per-swap overhead.
//!
//! ```
//! use qroute_core::budget::{self, RouteBudget};
//! use std::time::{Duration, Instant};
//!
//! // An already-expired deadline: the first checkpoint aborts the call.
//! let expired = RouteBudget::unlimited().deadline(Instant::now() - Duration::from_millis(1));
//! let out = budget::with_budget(&expired, || {
//!     budget::checkpoint(); // routers call this between rounds
//!     "unreachable"
//! });
//! assert!(out.is_err());
//! ```

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// The typed panic payload [`checkpoint`] unwinds with when the active
/// budget is exhausted. [`with_budget`] catches exactly this payload and
/// turns it into an `Err`; any other panic keeps propagating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("routing budget exceeded (deadline passed or cancelled)")
    }
}

/// A panic payload for *intentional* unwinds (fault injection, budget
/// aborts) that the hook installed by [`suppress_quiet_panics`] keeps
/// off stderr. The payload names its reason for post-mortem debugging.
#[derive(Debug, Clone, Copy)]
pub struct QuietUnwind(
    /// Why the unwind was raised (e.g. `"chaos-injected worker crash"`).
    pub &'static str,
);

/// A shared cancellation flag: the serving side holds one clone and
/// flips it, the routing side observes it at every [`checkpoint`].
/// Cloning shares the flag (it is an `Arc` internally).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flip the flag; every clone observes it. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a router invocation is allowed to spend: an optional wall-clock
/// deadline and an optional [`CancelToken`]. The default is unlimited —
/// checkpoints cost one thread-local read and nothing else.
#[derive(Clone, Debug, Default)]
pub struct RouteBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl RouteBudget {
    /// A budget with no deadline and no cancellation: [`with_budget`]
    /// with this value runs the closure directly (no unwind machinery).
    pub fn unlimited() -> RouteBudget {
        RouteBudget::default()
    }

    /// Abort (at the next checkpoint) once `at` has passed.
    pub fn deadline(mut self, at: Instant) -> RouteBudget {
        self.deadline = Some(at);
        self
    }

    /// Abort (at the next checkpoint) once `token` is cancelled.
    pub fn cancel_token(mut self, token: CancelToken) -> RouteBudget {
        self.cancel = Some(token);
        self
    }

    /// Whether this budget can ever abort anything.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Whether the budget is exhausted *right now* (deadline passed or
    /// token cancelled). Callers can poll this outside checkpoints, e.g.
    /// to skip work that expired while queued.
    pub fn is_exceeded(&self) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        self.deadline.is_some_and(|at| Instant::now() >= at)
    }
}

thread_local! {
    /// The budget armed on this thread by [`with_budget`], if any.
    static ACTIVE: RefCell<Option<RouteBudget>> = const { RefCell::new(None) };
}

/// The cooperative cancellation hook routers call between rounds.
///
/// With no budget armed on the current thread this is one thread-local
/// read. With a budget armed it additionally checks the token and the
/// clock, and unwinds with [`BudgetExceeded`] when the budget is
/// exhausted — an unwind that only [`with_budget`] (which armed the
/// budget, further up this same thread's stack) catches.
pub fn checkpoint() {
    let exceeded = ACTIVE.with(|b| b.borrow().as_ref().is_some_and(RouteBudget::is_exceeded));
    if exceeded {
        panic::panic_any(BudgetExceeded);
    }
}

/// Run `f` with `budget` armed on this thread; `Err(BudgetExceeded)`
/// when a [`checkpoint`] inside `f` aborted it. Real panics from `f`
/// propagate unchanged. Nesting replaces the armed budget for the inner
/// call and restores the outer one afterwards (also on unwind).
pub fn with_budget<R>(budget: &RouteBudget, f: impl FnOnce() -> R) -> Result<R, BudgetExceeded> {
    if !budget.is_limited() {
        // Unlimited: no checkpoints can fire, so skip the TLS write and
        // the catch_unwind entirely.
        return Ok(f());
    }
    suppress_quiet_panics();
    struct Restore(Option<RouteBudget>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|b| *b.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|b| b.borrow_mut().replace(budget.clone()));
    let _restore = Restore(prev);
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            if payload.downcast_ref::<BudgetExceeded>().is_some() {
                Err(BudgetExceeded)
            } else {
                panic::resume_unwind(payload)
            }
        }
    }
}

/// Install (once, process-wide) a panic hook that keeps intentional
/// unwinds — [`BudgetExceeded`] aborts and [`QuietUnwind`] fault
/// injections — off stderr, delegating every other panic to the
/// previously installed hook. [`with_budget`] installs it implicitly;
/// call it directly before raising a [`QuietUnwind`] yourself.
pub fn suppress_quiet_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = info.payload().downcast_ref::<BudgetExceeded>().is_some()
                || info.payload().downcast_ref::<QuietUnwind>().is_some();
            if !quiet {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_is_a_passthrough() {
        let out = with_budget(&RouteBudget::unlimited(), || {
            checkpoint();
            42
        });
        assert_eq!(out, Ok(42));
    }

    #[test]
    fn expired_deadline_aborts_at_the_first_checkpoint() {
        let budget = RouteBudget::unlimited().deadline(Instant::now() - Duration::from_millis(1));
        let mut reached = false;
        let out = with_budget(&budget, || {
            checkpoint();
            reached = true;
        });
        assert_eq!(out, Err(BudgetExceeded));
        assert!(
            !reached,
            "checkpoint must abort before the closure finishes"
        );
    }

    #[test]
    fn generous_deadline_lets_work_finish() {
        let budget = RouteBudget::unlimited().deadline(Instant::now() + Duration::from_secs(3600));
        let out = with_budget(&budget, || {
            for _ in 0..100 {
                checkpoint();
            }
            "done"
        });
        assert_eq!(out, Ok("done"));
    }

    #[test]
    fn cancellation_is_observed_cross_thread() {
        let token = CancelToken::new();
        let budget = RouteBudget::unlimited().cancel_token(token.clone());
        assert!(!budget.is_exceeded());
        let handle = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                token.cancel();
            })
        };
        let out = with_budget(&budget, || loop {
            checkpoint();
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(out, Err(BudgetExceeded));
        handle.join().unwrap();
        assert!(token.is_cancelled());
        assert!(budget.is_exceeded());
    }

    #[test]
    fn real_panics_pass_through_untouched() {
        let budget = RouteBudget::unlimited().deadline(Instant::now() + Duration::from_secs(3600));
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = with_budget(&budget, || panic!("router bug"));
        }));
        let payload = caught.expect_err("the panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied();
        assert_eq!(msg, Some("router bug"));
    }

    #[test]
    fn budgets_restore_the_outer_budget_on_exit() {
        let outer = RouteBudget::unlimited().deadline(Instant::now() + Duration::from_secs(3600));
        let out = with_budget(&outer, || {
            let inner =
                RouteBudget::unlimited().deadline(Instant::now() - Duration::from_millis(1));
            let inner_out = with_budget(&inner, checkpoint);
            assert_eq!(inner_out, Err(BudgetExceeded));
            // The outer (generous) budget is armed again.
            checkpoint();
            "outer survived"
        });
        assert_eq!(out, Ok("outer survived"));
    }

    #[test]
    fn checkpoint_outside_any_budget_is_a_no_op() {
        checkpoint(); // must not panic
    }
}
