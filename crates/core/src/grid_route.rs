//! The 3-phase `GridRoute` of Alon, Chung and Graham, and the *naive* grid
//! router baseline.
//!
//! `GridRoute(G, π; σ₁,…,σₙ)` routes in three rounds (§IV):
//!
//! 1. **columns** — in parallel, column `j` is permuted by `σⱼ`, staging
//!    each qubit in a row from which its destination column is unique;
//! 2. **rows** — in parallel, each row sends every staged qubit to its
//!    destination column;
//! 3. **columns** — each column sends every qubit to its destination row.
//!
//! Each round routes paths with odd–even transposition ([`crate::line`]).
//! The σ's come from a decomposition of the column multigraph `G[1,m]`
//! into `m` perfect matchings plus an assignment of matchings to staging
//! rows; the *naive* baseline does both arbitrarily, which is exactly what
//! the locality-aware algorithm (in [`crate::local_grid`]) improves.

use crate::line::{FirstParity, LineScratch};
use crate::schedule::{RoutingSchedule, SwapLayer};
use qroute_matching::{decompose_regular, BipartiteMultigraph, LabeledEdge};
use qroute_perm::Permutation;
use qroute_topology::Grid;

/// How each row/column line permutation is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineStrategy {
    /// Always start odd–even transposition with even-parity edges.
    EvenFirst,
    /// Run both parities and keep the shallower line schedule (default).
    #[default]
    BestParity,
}

/// One grid line (a row or a column) as an arithmetic progression of
/// vertex ids — position `p` is vertex `base + stride * p` — paired with
/// the *borrowed* target positions of its tokens. Rows and columns of a
/// row-major grid are always progressions, so no per-line vertex vector
/// is ever materialized.
pub(crate) struct LineSpec<'a> {
    /// Vertex id of position 0.
    pub base: usize,
    /// Id increment per position (1 for rows, `cols` for columns).
    pub stride: usize,
    /// `targets[p]` = destination position of the token at position `p`.
    pub targets: &'a [usize],
}

/// Route a set of vertex-disjoint lines in parallel; round `k` of every
/// line is merged into one swap layer. Lines are routed one at a time
/// through the shared `scratch`, so the whole pass allocates only the
/// output layers.
pub(crate) fn route_parallel_lines<'a>(
    lines: impl Iterator<Item = LineSpec<'a>>,
    strategy: LineStrategy,
    scratch: &mut LineScratch,
) -> RoutingSchedule {
    let mut layers: Vec<SwapLayer> = Vec::new();
    for line in lines {
        let rounds = match strategy {
            LineStrategy::EvenFirst => scratch.route(line.targets, FirstParity::Even),
            LineStrategy::BestParity => scratch.route_best(line.targets),
        };
        for (k, round) in rounds.iter().enumerate() {
            if k == layers.len() {
                layers.push(SwapLayer::default());
            }
            layers[k].swaps.extend(
                round
                    .iter()
                    .map(|&(a, b)| (line.base + line.stride * a, line.base + line.stride * b)),
            );
        }
    }
    RoutingSchedule::from_layers(layers)
}

/// Build the column multigraph `G[1,m]` of §IV-A for permutation `π`:
/// one edge `j → j'` labeled `(i, i')` per qubit at `(i, j)` destined for
/// `(i', j')`. Edges are inserted in row-major qubit order, making band
/// extraction deterministic.
pub fn build_column_multigraph(grid: Grid, pi: &Permutation) -> BipartiteMultigraph {
    assert_eq!(grid.len(), pi.len(), "permutation size must match grid");
    let mut mg = BipartiteMultigraph::new(grid.cols());
    for i in 0..grid.rows() {
        for j in 0..grid.cols() {
            let (ip, jp) = grid.coords(pi.apply(grid.index(i, j)));
            mg.add_edge(LabeledEdge { left: j, right: jp, src_row: i, dst_row: ip });
        }
    }
    mg
}

/// `GridRoute(G, π; σ₁,…,σₙ)`: the 3-phase routing given staging
/// permutations. `sigmas[j][i]` is the staging row of the qubit at
/// `(i, j)`.
///
/// # Panics
/// Panics when the σ's are not valid staging permutations (each `σⱼ` must
/// permute rows, and staged rows must give each row one qubit per
/// destination column — the Hall property of §IV).
pub fn grid_route_with_sigmas(
    grid: Grid,
    pi: &Permutation,
    sigmas: &[Vec<usize>],
    strategy: LineStrategy,
) -> RoutingSchedule {
    let m = grid.rows();
    let n = grid.cols();
    assert_eq!(pi.len(), grid.len(), "permutation size must match grid");
    assert_eq!(sigmas.len(), n, "need one σ per column");
    for (j, sigma) in sigmas.iter().enumerate() {
        assert_eq!(sigma.len(), m, "σ_{j} must cover all rows");
        let mut seen = vec![false; m];
        for &r in sigma {
            assert!(r < m && !seen[r], "σ_{j} is not a permutation of rows");
            seen[r] = true;
        }
    }

    // Phase 2 targets: row_targets[r][j] = destination column of the qubit
    // staged at (r, j).
    let mut row_targets = vec![vec![usize::MAX; n]; m];
    // Phase 3 targets: col_targets[j'][r] = destination row of the qubit
    // sitting at (r, j') after phase 2.
    let mut col_targets = vec![vec![usize::MAX; m]; n];
    for j in 0..n {
        for (i, &r) in sigmas[j].iter().enumerate() {
            let (ip, jp) = grid.coords(pi.apply(grid.index(i, j)));
            assert_eq!(
                row_targets[r][j],
                usize::MAX,
                "two qubits of column {j} staged in row {r}"
            );
            row_targets[r][j] = jp;
            assert!(
                col_targets[jp][r] == usize::MAX,
                "σ's violate the matching property: row {r} sends two qubits to column {jp}"
            );
            col_targets[jp][r] = ip;
        }
    }

    let mut schedule = RoutingSchedule::empty();
    let mut scratch = LineScratch::new();
    // Column j is vertices {j, j+n, …}; row r is {r·n, r·n+1, …}. Targets
    // are borrowed straight from the phase tables — no per-line clones.
    // Phase 1: columns permuted by σ.
    schedule.extend(route_parallel_lines(
        (0..n).map(|j| LineSpec { base: j, stride: n, targets: &sigmas[j] }),
        strategy,
        &mut scratch,
    ));
    // Phase 2: rows to destination columns.
    schedule.extend(route_parallel_lines(
        (0..m).map(|r| LineSpec { base: r * n, stride: 1, targets: &row_targets[r] }),
        strategy,
        &mut scratch,
    ));
    // Phase 3: columns to destination rows.
    schedule.extend(route_parallel_lines(
        (0..n).map(|j| LineSpec { base: j, stride: n, targets: &col_targets[j] }),
        strategy,
        &mut scratch,
    ));
    schedule
}

/// Options for the naive grid router.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveOptions {
    /// Line routing strategy for all three phases.
    pub line: LineStrategy,
    /// Apply ASAP depth compaction to the final schedule.
    pub compact: bool,
    /// Also route the transposed instance and keep the shallower result.
    pub try_transpose: bool,
    /// When set, matchings are extracted in a seeded-random edge order and
    /// assigned to rows in seeded-random order — *adversarially* arbitrary
    /// choices, the scenario Figure 3 of the paper warns about. When
    /// `None`, the deterministic Hopcroft–Karp order is used, which turns
    /// out to be "lucky arbitrary" (it favors low rows first).
    pub randomize: Option<u64>,
}

impl NaiveOptions {
    /// The configuration used as the paper's baseline: compaction off,
    /// transpose off, even-first lines — the plain 3-phase algorithm.
    pub fn plain() -> NaiveOptions {
        NaiveOptions {
            line: LineStrategy::EvenFirst,
            compact: false,
            try_transpose: false,
            randomize: None,
        }
    }
}

/// Deterministic splitmix64 stream (no external RNG dependency in this
/// crate; only used to make the naive baseline's arbitrary choices
/// reproducibly random).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Fisher–Yates with a splitmix64 stream.
fn seeded_shuffle<T>(v: &mut [T], seed: u64) {
    let mut state = seed ^ 0xD1B54A32D192ED03;
    for i in (1..v.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Transpose a routing instance: `πᵀ(j, i) = (j', i')` iff
/// `π(i, j) = (i', j')`.
pub fn transpose_instance(grid: Grid, pi: &Permutation) -> (Grid, Permutation) {
    let gt = grid.transpose();
    let mut map = vec![0usize; pi.len()];
    for v in 0..pi.len() {
        map[grid.transpose_vertex(v)] = grid.transpose_vertex(pi.apply(v));
    }
    (gt, Permutation::from_vec_unchecked(map))
}

/// Map a schedule computed on the transposed grid back to original vertex
/// ids.
pub fn untranspose_schedule(grid_t: Grid, schedule: RoutingSchedule) -> RoutingSchedule {
    let layers = schedule
        .layers
        .into_iter()
        .map(|layer| {
            SwapLayer::new(
                layer
                    .swaps
                    .into_iter()
                    .map(|(u, v)| (grid_t.transpose_vertex(u), grid_t.transpose_vertex(v)))
                    .collect(),
            )
        })
        .collect();
    RoutingSchedule::from_layers(layers)
}

/// The naive 3-phase grid router: decompose `G[1,m]` into `m` perfect
/// matchings *arbitrarily* and assign matching `k` to staging row `k` in
/// extraction order — the Alon–Chung–Graham baseline the paper improves.
pub fn naive_grid_route(grid: Grid, pi: &Permutation, opts: &NaiveOptions) -> RoutingSchedule {
    let route_once = |grid: Grid, pi: &Permutation| -> RoutingSchedule {
        // One cooperative cancellation probe per 3-phase pass.
        crate::budget::checkpoint();
        let mut mg = build_column_multigraph(grid, pi);
        let m = grid.rows();
        let n = grid.cols();
        let matchings = match opts.randomize {
            None => decompose_regular(&mut mg).expect("column multigraph is always m-regular"),
            Some(seed) => {
                // Adversarially arbitrary: shuffle the candidate edge
                // order so representative-edge choices (and therefore the
                // matchings) are random; regularity still guarantees m
                // perfect matchings.
                let mut out = Vec::with_capacity(m);
                while mg.num_alive() > 0 {
                    let mut all = mg.alive_edges();
                    seeded_shuffle(&mut all, seed ^ out.len() as u64);
                    let found = mg.extract_perfect_matchings(&all);
                    assert!(!found.is_empty(), "regular multigraph must keep matching");
                    out.extend(found);
                }
                out
            }
        };
        debug_assert_eq!(matchings.len(), m);
        // Row assignment: extraction order, or random when randomized.
        let mut row_of: Vec<usize> = (0..m).collect();
        if let Some(seed) = opts.randomize {
            seeded_shuffle(&mut row_of, seed ^ 0xABCD);
        }
        let mut sigmas = vec![vec![usize::MAX; m]; n];
        for (k, matching) in matchings.iter().enumerate() {
            for &id in matching {
                let e = mg.edge(id);
                sigmas[e.left][e.src_row] = row_of[k];
            }
        }
        grid_route_with_sigmas(grid, pi, &sigmas, opts.line)
    };

    let mut best = route_once(grid, pi);
    if opts.try_transpose {
        let (gt, pit) = transpose_instance(grid, pi);
        let alt = untranspose_schedule(gt, route_once(gt, &pit));
        if alt.depth() < best.depth() {
            best = alt;
        }
    }
    if opts.compact {
        best = best.compact(grid.len());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::generators;

    fn check_route(grid: Grid, pi: &Permutation, opts: &NaiveOptions) -> RoutingSchedule {
        let s = naive_grid_route(grid, pi, opts);
        assert!(s.realizes(pi), "schedule does not realize π on {grid:?}");
        s.validate_on(&grid.to_graph()).expect("invalid layers");
        s
    }

    #[test]
    fn identity_routes_to_empty() {
        let grid = Grid::new(4, 5);
        let s = check_route(grid, &Permutation::identity(20), &NaiveOptions::default());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn routes_random_permutations_on_many_shapes() {
        for (m, n) in [
            (1, 1),
            (1, 8),
            (8, 1),
            (2, 2),
            (3, 4),
            (4, 3),
            (5, 5),
            (7, 3),
        ] {
            let grid = Grid::new(m, n);
            for seed in 0..4 {
                let pi = generators::random(grid.len(), seed);
                for opts in [
                    NaiveOptions::plain(),
                    NaiveOptions { compact: true, try_transpose: true, ..Default::default() },
                ] {
                    check_route(grid, &pi, &opts);
                }
            }
        }
    }

    #[test]
    fn depth_bound_three_phases() {
        // Each phase is at most max(m, n) rounds, so depth <= 2m + n (or
        // with transpose min(2m+n, 2n+m)).
        let grid = Grid::new(6, 6);
        for seed in 0..8 {
            let pi = generators::random(36, seed);
            let s = naive_grid_route(grid, &pi, &NaiveOptions::plain());
            assert!(
                s.depth() <= 2 * 6 + 6,
                "depth {} exceeds 3-phase bound",
                s.depth()
            );
        }
    }

    #[test]
    fn compaction_never_hurts() {
        let grid = Grid::new(5, 4);
        for seed in 0..6 {
            let pi = generators::random(20, seed);
            let plain = naive_grid_route(grid, &pi, &NaiveOptions::plain());
            let compacted = naive_grid_route(
                grid,
                &pi,
                &NaiveOptions { compact: true, ..NaiveOptions::plain() },
            );
            assert!(compacted.depth() <= plain.depth());
            assert!(compacted.realizes(&pi));
        }
    }

    #[test]
    fn transpose_instance_round_trip() {
        let grid = Grid::new(3, 5);
        let pi = generators::random(15, 9);
        let (gt, pit) = transpose_instance(grid, &pi);
        let (gtt, pitt) = transpose_instance(gt, &pit);
        assert_eq!(gtt, grid);
        assert_eq!(pitt, pi);
    }

    #[test]
    fn grid_route_with_explicit_sigmas() {
        // 2x2 grid, permutation = swap the two columns in row 0 only...
        // Use a full column swap: (i, 0) <-> (i, 1).
        let grid = Grid::new(2, 2);
        let pi = Permutation::from_vec(vec![1, 0, 3, 2]).unwrap();
        // Identity sigmas suffice: every row already has distinct dest
        // columns.
        let sigmas = vec![vec![0, 1], vec![0, 1]];
        let s = grid_route_with_sigmas(grid, &pi, &sigmas, LineStrategy::BestParity);
        assert!(s.realizes(&pi));
        assert_eq!(s.depth(), 1, "pure row swap should take one layer");
    }

    #[test]
    #[should_panic(expected = "not a permutation of rows")]
    fn invalid_sigma_panics() {
        let grid = Grid::new(2, 2);
        let pi = Permutation::identity(4);
        let sigmas = vec![vec![0, 0], vec![0, 1]];
        let _ = grid_route_with_sigmas(grid, &pi, &sigmas, LineStrategy::EvenFirst);
    }

    #[test]
    #[should_panic(expected = "matching property")]
    fn sigma_violating_hall_panics() {
        // Both columns stage their (0,*) qubit in row 0, but both qubits
        // target column 0 -> phase 2 collision.
        let grid = Grid::new(2, 2);
        // π: (0,0)->(0,0), (0,1)->(1,0), (1,0)->(0,1), (1,1)->(1,1)
        let pi = Permutation::from_vec(vec![0, 2, 1, 3]).unwrap();
        let sigmas = vec![vec![0, 1], vec![0, 1]];
        let _ = grid_route_with_sigmas(grid, &pi, &sigmas, LineStrategy::EvenFirst);
    }

    #[test]
    fn randomized_naive_still_realizes() {
        let grid = Grid::new(5, 4);
        for seed in 0..4 {
            let pi = generators::random(20, seed);
            let opts = NaiveOptions { randomize: Some(seed), ..NaiveOptions::plain() };
            let s = naive_grid_route(grid, &pi, &opts);
            assert!(s.realizes(&pi), "seed {seed}");
            s.validate_on(&grid.to_graph()).unwrap();
        }
    }

    #[test]
    fn randomized_naive_shows_figure3_overhead_on_local_workloads() {
        // Figure 3 of the paper: arbitrary matching choices can route a
        // nearby qubit the long way around. On block-local permutations
        // the adversarially arbitrary naive router should be far deeper
        // than the locality-aware one.
        use crate::local_grid::local_grid_route;
        let grid = Grid::new(12, 12);
        let mut naive_total = 0usize;
        let mut local_total = 0usize;
        for seed in 0..5 {
            let pi = generators::block_local(grid, 3, 3, seed);
            let opts = NaiveOptions {
                randomize: Some(seed),
                compact: true,
                try_transpose: true,
                ..Default::default()
            };
            naive_total += naive_grid_route(grid, &pi, &opts).depth();
            local_total += local_grid_route(grid, &pi).depth();
        }
        assert!(
            naive_total >= 2 * local_total,
            "random-arbitrary naive ({naive_total}) should dwarf locality-aware ({local_total})"
        );
    }

    #[test]
    fn single_row_grid_reduces_to_line_routing() {
        let grid = Grid::new(1, 9);
        let pi = generators::reversal(9);
        let s = naive_grid_route(grid, &pi, &NaiveOptions::plain());
        assert!(s.realizes(&pi));
        assert!(s.depth() <= 9);
        assert!(s.depth() >= 8);
    }

    #[test]
    fn torus_shift_depth_reasonable() {
        let grid = Grid::new(8, 8);
        let pi = generators::torus_shift(grid, 0, 1);
        let s = naive_grid_route(
            grid,
            &pi,
            &NaiveOptions { compact: true, try_transpose: true, ..Default::default() },
        );
        assert!(s.realizes(&pi));
        // A horizontal cyclic shift needs ~n layers on a path-row.
        assert!(
            s.depth() <= 16,
            "depth {} too large for unit shift",
            s.depth()
        );
    }
}
