//! Schedule statistics: how well a routing schedule uses the hardware.
//!
//! Depth and size are the headline numbers; these diagnostics explain
//! them — average layer occupancy (parallelism), the busiest qubit, and
//! how close the schedule sits to its volume and distance lower bounds.

use crate::router::GridRouter;
use crate::schedule::RoutingSchedule;
use qroute_perm::{metrics, Permutation};
use qroute_topology::Grid;
use serde::Serialize;
use std::time::Instant;

/// Aggregate statistics of a schedule for a given instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Number of layers.
    pub depth: usize,
    /// Total swaps.
    pub size: usize,
    /// Mean swaps per layer (0 for empty schedules).
    pub mean_layer_occupancy: f64,
    /// Largest layer.
    pub max_layer_occupancy: usize,
    /// Swaps touching the busiest vertex.
    pub max_vertex_load: usize,
    /// The instance's depth lower bound: the maximum grid distance any
    /// token must travel (`metrics::max_displacement`).
    pub lower_bound: usize,
    /// `depth / max_displacement` (∞-norm stretch; 1.0 is optimal).
    /// `None` when the permutation is the identity.
    pub depth_stretch: Option<f64>,
    /// `2 * size / total_displacement` (volume stretch; ≥ 1.0 since one
    /// swap moves two tokens one step). `None` for the identity.
    pub volume_stretch: Option<f64>,
}

/// Five-number summary of a sample distribution (mean, min, median, p90,
/// max), the aggregate every benchmark cell records per metric.
///
/// Percentiles use the nearest-rank method (`ceil(p/100 * n)`-th smallest
/// sample), so every reported value is an actual observation — summaries
/// over integer-valued metrics such as depth stay exactly reproducible.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SampleSummary {
    /// Number of samples aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (nearest-rank 50th percentile).
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleSummary {
    /// Summarize `samples`. Empty input yields the all-zero summary.
    pub fn from_samples(samples: &[f64]) -> SampleSummary {
        if samples.is_empty() {
            return SampleSummary { n: 0, mean: 0.0, min: 0.0, p50: 0.0, p90: 0.0, max: 0.0 };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let n = sorted.len();
        let rank = |p: f64| -> f64 {
            let k = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        SampleSummary {
            n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            p50: rank(50.0),
            p90: rank(90.0),
            max: sorted[n - 1],
        }
    }

    /// Relative change of `self.mean` versus `baseline.mean`
    /// (`0.10` = 10% worse). Zero-mean baselines compare as unchanged
    /// unless the current mean is positive, which counts as +∞.
    pub fn mean_delta(&self, baseline: &SampleSummary) -> f64 {
        if baseline.mean == 0.0 {
            if self.mean > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            (self.mean - baseline.mean) / baseline.mean
        }
    }
}

/// A routed instance with its wall-clock routing time: the raw sample a
/// benchmark run aggregates into [`SampleSummary`] cells.
#[derive(Debug, Clone)]
pub struct TimedRoute {
    /// The schedule the router produced.
    pub schedule: RoutingSchedule,
    /// Full schedule statistics for the instance.
    pub stats: ScheduleStats,
    /// Wall-clock time the `route` call took, in milliseconds.
    pub route_ms: f64,
}

/// Route `pi` on `grid` with `router`, capturing wall-clock routing time
/// and the schedule statistics in one call.
pub fn route_timed(grid: Grid, pi: &Permutation, router: &impl GridRouter) -> TimedRoute {
    let t0 = Instant::now();
    let schedule = router.route(grid, pi);
    let route_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = schedule_stats(grid, pi, &schedule);
    TimedRoute { schedule, stats, route_ms }
}

/// Compute [`ScheduleStats`] for a schedule realizing `pi` on `grid`.
pub fn schedule_stats(grid: Grid, pi: &Permutation, schedule: &RoutingSchedule) -> ScheduleStats {
    let depth = schedule.depth();
    let size = schedule.size();
    let mut vertex_load = vec![0usize; grid.len()];
    let mut max_layer = 0usize;
    for layer in &schedule.layers {
        max_layer = max_layer.max(layer.len());
        for &(u, v) in &layer.swaps {
            vertex_load[u] += 1;
            vertex_load[v] += 1;
        }
    }
    let maxd = metrics::max_displacement(grid, pi);
    let total = metrics::total_displacement(grid, pi);
    ScheduleStats {
        depth,
        size,
        mean_layer_occupancy: if depth == 0 {
            0.0
        } else {
            size as f64 / depth as f64
        },
        max_layer_occupancy: max_layer,
        max_vertex_load: vertex_load.iter().copied().max().unwrap_or(0),
        lower_bound: maxd,
        depth_stretch: (maxd > 0).then(|| depth as f64 / maxd as f64),
        volume_stretch: (total > 0).then(|| 2.0 * size as f64 / total as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{GridRouter, RouterKind};
    use qroute_perm::generators;

    #[test]
    fn sample_summary_nearest_rank() {
        let s = SampleSummary::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p90, 5.0);
        assert_eq!(s.max, 5.0);
        let one = SampleSummary::from_samples(&[7.0]);
        assert_eq!((one.min, one.p50, one.p90, one.max), (7.0, 7.0, 7.0, 7.0));
        let empty = SampleSummary::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn mean_delta_signs() {
        let base = SampleSummary::from_samples(&[10.0]);
        let worse = SampleSummary::from_samples(&[11.0]);
        let better = SampleSummary::from_samples(&[9.0]);
        assert!((worse.mean_delta(&base) - 0.1).abs() < 1e-12);
        assert!((better.mean_delta(&base) + 0.1).abs() < 1e-12);
        let zero = SampleSummary::from_samples(&[0.0]);
        assert_eq!(worse.mean_delta(&zero), f64::INFINITY);
        assert_eq!(zero.mean_delta(&zero), 0.0);
    }

    #[test]
    fn route_timed_captures_consistent_stats() {
        let grid = Grid::new(5, 5);
        let pi = generators::random(25, 1);
        let t = route_timed(grid, &pi, &RouterKind::locality_aware());
        assert!(t.schedule.realizes(&pi));
        assert_eq!(t.stats.depth, t.schedule.depth());
        assert_eq!(t.stats.size, t.schedule.size());
        assert!(t.route_ms >= 0.0);
    }

    #[test]
    fn identity_stats() {
        let grid = Grid::new(3, 3);
        let pi = Permutation::identity(9);
        let s = RouterKind::locality_aware().route(grid, &pi);
        let st = schedule_stats(grid, &pi, &s);
        assert_eq!(st.depth, 0);
        assert_eq!(st.size, 0);
        assert_eq!(st.depth_stretch, None);
        assert_eq!(st.volume_stretch, None);
        assert_eq!(st.mean_layer_occupancy, 0.0);
    }

    #[test]
    fn stretch_bounds_hold() {
        let grid = Grid::new(6, 6);
        for seed in 0..4 {
            let pi = generators::random(36, seed);
            for router in [RouterKind::locality_aware(), RouterKind::Ats] {
                let s = router.route(grid, &pi);
                let st = schedule_stats(grid, &pi, &s);
                assert!(st.depth_stretch.unwrap() >= 1.0, "{}", router.name());
                assert!(st.volume_stretch.unwrap() >= 1.0, "{}", router.name());
                assert!(st.max_layer_occupancy <= grid.len() / 2);
                assert!(st.max_vertex_load <= st.depth);
                assert!(st.mean_layer_occupancy <= st.max_layer_occupancy as f64);
            }
        }
    }

    #[test]
    fn parallel_router_has_higher_occupancy_than_serial() {
        let grid = Grid::new(8, 8);
        let pi = generators::random(64, 5);
        let par = schedule_stats(grid, &pi, &RouterKind::locality_aware().route(grid, &pi));
        let ser = schedule_stats(grid, &pi, &RouterKind::AtsSerial.route(grid, &pi));
        assert!(
            par.mean_layer_occupancy > ser.mean_layer_occupancy,
            "3-phase ({:.2}) should pack layers better than serialized ATS ({:.2})",
            par.mean_layer_occupancy,
            ser.mean_layer_occupancy
        );
    }
}
