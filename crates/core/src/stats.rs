//! Schedule statistics: how well a routing schedule uses the hardware.
//!
//! Depth and size are the headline numbers; these diagnostics explain
//! them — average layer occupancy (parallelism), the busiest qubit, and
//! how close the schedule sits to its volume and distance lower bounds.

use crate::schedule::RoutingSchedule;
use qroute_perm::{metrics, Permutation};
use qroute_topology::Grid;

/// Aggregate statistics of a schedule for a given instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Number of layers.
    pub depth: usize,
    /// Total swaps.
    pub size: usize,
    /// Mean swaps per layer (0 for empty schedules).
    pub mean_layer_occupancy: f64,
    /// Largest layer.
    pub max_layer_occupancy: usize,
    /// Swaps touching the busiest vertex.
    pub max_vertex_load: usize,
    /// `depth / max_displacement` (∞-norm stretch; 1.0 is optimal).
    /// `None` when the permutation is the identity.
    pub depth_stretch: Option<f64>,
    /// `2 * size / total_displacement` (volume stretch; ≥ 1.0 since one
    /// swap moves two tokens one step). `None` for the identity.
    pub volume_stretch: Option<f64>,
}

/// Compute [`ScheduleStats`] for a schedule realizing `pi` on `grid`.
pub fn schedule_stats(grid: Grid, pi: &Permutation, schedule: &RoutingSchedule) -> ScheduleStats {
    let depth = schedule.depth();
    let size = schedule.size();
    let mut vertex_load = vec![0usize; grid.len()];
    let mut max_layer = 0usize;
    for layer in &schedule.layers {
        max_layer = max_layer.max(layer.len());
        for &(u, v) in &layer.swaps {
            vertex_load[u] += 1;
            vertex_load[v] += 1;
        }
    }
    let maxd = metrics::max_displacement(grid, pi);
    let total = metrics::total_displacement(grid, pi);
    ScheduleStats {
        depth,
        size,
        mean_layer_occupancy: if depth == 0 {
            0.0
        } else {
            size as f64 / depth as f64
        },
        max_layer_occupancy: max_layer,
        max_vertex_load: vertex_load.iter().copied().max().unwrap_or(0),
        depth_stretch: (maxd > 0).then(|| depth as f64 / maxd as f64),
        volume_stretch: (total > 0).then(|| 2.0 * size as f64 / total as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{GridRouter, RouterKind};
    use qroute_perm::generators;

    #[test]
    fn identity_stats() {
        let grid = Grid::new(3, 3);
        let pi = Permutation::identity(9);
        let s = RouterKind::locality_aware().route(grid, &pi);
        let st = schedule_stats(grid, &pi, &s);
        assert_eq!(st.depth, 0);
        assert_eq!(st.size, 0);
        assert_eq!(st.depth_stretch, None);
        assert_eq!(st.volume_stretch, None);
        assert_eq!(st.mean_layer_occupancy, 0.0);
    }

    #[test]
    fn stretch_bounds_hold() {
        let grid = Grid::new(6, 6);
        for seed in 0..4 {
            let pi = generators::random(36, seed);
            for router in [RouterKind::locality_aware(), RouterKind::Ats] {
                let s = router.route(grid, &pi);
                let st = schedule_stats(grid, &pi, &s);
                assert!(st.depth_stretch.unwrap() >= 1.0, "{}", router.name());
                assert!(st.volume_stretch.unwrap() >= 1.0, "{}", router.name());
                assert!(st.max_layer_occupancy <= grid.len() / 2);
                assert!(st.max_vertex_load <= st.depth);
                assert!(st.mean_layer_occupancy <= st.max_layer_occupancy as f64);
            }
        }
    }

    #[test]
    fn parallel_router_has_higher_occupancy_than_serial() {
        let grid = Grid::new(8, 8);
        let pi = generators::random(64, 5);
        let par = schedule_stats(grid, &pi, &RouterKind::locality_aware().route(grid, &pi));
        let ser = schedule_stats(grid, &pi, &RouterKind::AtsSerial.route(grid, &pi));
        assert!(
            par.mean_layer_occupancy > ser.mean_layer_occupancy,
            "3-phase ({:.2}) should pack layers better than serialized ATS ({:.2})",
            par.mean_layer_occupancy,
            ser.mean_layer_occupancy
        );
    }
}
