//! Swap layers, routing schedules, verification and depth compaction.

use qroute_perm::Permutation;
use qroute_topology::Graph;

/// One layer of vertex-disjoint SWAPs — a matching of the coupling graph —
/// executable in a single time step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwapLayer {
    /// The disjoint swaps `(u, v)` of this layer.
    pub swaps: Vec<(usize, usize)>,
}

impl SwapLayer {
    /// A layer from a list of swaps (disjointness is the caller's
    /// responsibility; see [`RoutingSchedule::validate_on`]).
    pub fn new(swaps: Vec<(usize, usize)>) -> SwapLayer {
        SwapLayer { swaps }
    }

    /// Number of swaps in the layer.
    pub fn len(&self) -> usize {
        self.swaps.len()
    }

    /// `true` when the layer contains no swaps.
    pub fn is_empty(&self) -> bool {
        self.swaps.is_empty()
    }
}

/// Errors from [`RoutingSchedule::validate_on`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A swap used a pair that is not an edge of the coupling graph.
    NotAnEdge {
        /// Index of the offending layer.
        layer: usize,
        /// The offending pair.
        pair: (usize, usize),
    },
    /// Two swaps in one layer share a vertex.
    NotAMatching {
        /// Index of the offending layer.
        layer: usize,
        /// The shared vertex.
        vertex: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NotAnEdge { layer, pair } => {
                write!(f, "layer {layer}: pair {pair:?} is not a coupling edge")
            }
            ScheduleError::NotAMatching { layer, vertex } => {
                write!(f, "layer {layer}: vertex {vertex} used by two swaps")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A routing schedule: an ordered sequence of swap layers.
///
/// Token semantics: vertices hold tokens; initially the token at vertex `v`
/// is labeled `v`. Applying a layer exchanges the tokens on each swapped
/// pair. The schedule *realizes* `π` when the token labeled `v` ends at
/// vertex `π(v)` for every `v`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingSchedule {
    /// The layers, in execution order.
    pub layers: Vec<SwapLayer>,
}

impl RoutingSchedule {
    /// The empty schedule (realizes the identity).
    pub fn empty() -> RoutingSchedule {
        RoutingSchedule { layers: Vec::new() }
    }

    /// Wrap a layer sequence.
    pub fn from_layers(layers: Vec<SwapLayer>) -> RoutingSchedule {
        RoutingSchedule { layers }
    }

    /// Number of layers — the depth overhead added to the circuit.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of SWAP gates — the size overhead.
    pub fn size(&self) -> usize {
        self.layers.iter().map(SwapLayer::len).sum()
    }

    /// Append a layer (dropped silently when empty).
    pub fn push_layer(&mut self, layer: SwapLayer) {
        if !layer.is_empty() {
            self.layers.push(layer);
        }
    }

    /// Append all layers of `other` after `self`'s.
    pub fn extend(&mut self, other: RoutingSchedule) {
        for layer in other.layers {
            self.push_layer(layer);
        }
    }

    /// Iterate over all swaps in execution order (layer by layer).
    pub fn swaps(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.layers.iter().flat_map(|l| l.swaps.iter().copied())
    }

    /// Apply the schedule to a token configuration `at` (`at[v]` = token at
    /// vertex `v`).
    ///
    /// # Panics
    /// Panics when a swap endpoint is out of range.
    pub fn apply_to(&self, at: &mut [usize]) {
        for layer in &self.layers {
            for &(u, v) in &layer.swaps {
                at.swap(u, v);
            }
        }
    }

    /// The permutation realized by the schedule on `n` vertices: token `v`
    /// ends at `realized.apply(v)`.
    pub fn realized_permutation(&self, n: usize) -> Permutation {
        let mut at: Vec<usize> = (0..n).collect();
        self.apply_to(&mut at);
        // at[pos] = token  =>  token `t` is at `pos`, i.e. realized(t) = pos.
        let mut map = vec![0usize; n];
        for (pos, &token) in at.iter().enumerate() {
            map[token] = pos;
        }
        Permutation::from_vec_unchecked(map)
    }

    /// `true` iff the schedule moves the token starting at `v` to `π(v)`
    /// for every vertex.
    pub fn realizes(&self, pi: &Permutation) -> bool {
        self.realized_permutation(pi.len()) == *pi
    }

    /// Check that every layer is a matching of `graph` (disjoint swaps over
    /// actual coupling edges).
    pub fn validate_on(&self, graph: &Graph) -> Result<(), ScheduleError> {
        let mut used = vec![usize::MAX; graph.len()];
        for (k, layer) in self.layers.iter().enumerate() {
            for &(u, v) in &layer.swaps {
                if !graph.has_edge(u, v) {
                    return Err(ScheduleError::NotAnEdge { layer: k, pair: (u, v) });
                }
                for w in [u, v] {
                    if used[w] == k {
                        return Err(ScheduleError::NotAMatching { layer: k, vertex: w });
                    }
                    used[w] = k;
                }
            }
        }
        Ok(())
    }

    /// Greedy ASAP depth compaction: every swap is rescheduled to the
    /// earliest layer after the last layer touching either endpoint.
    ///
    /// Per-vertex swap order is preserved, and vertex-disjoint swaps
    /// commute, so the compacted schedule realizes the same permutation
    /// (and the same circuit semantics when swaps carry gates). Depth never
    /// increases.
    pub fn compact(&self, n: usize) -> RoutingSchedule {
        RoutingSchedule::compact_swaps(n, self.swaps())
    }

    /// The greedy ASAP pass over a bare swap sequence: the single shared
    /// implementation behind [`RoutingSchedule::compact`] and the
    /// borrow-based `AtsOutcome::parallelized` (which skips building an
    /// intermediate one-layer schedule).
    pub fn compact_swaps(
        n: usize,
        swaps: impl IntoIterator<Item = (usize, usize)>,
    ) -> RoutingSchedule {
        let mut avail = vec![0usize; n];
        let mut layers: Vec<SwapLayer> = Vec::new();
        for (u, v) in swaps {
            let t = avail[u].max(avail[v]);
            if t == layers.len() {
                layers.push(SwapLayer::default());
            }
            layers[t].swaps.push((u, v));
            avail[u] = t + 1;
            avail[v] = t + 1;
        }
        RoutingSchedule { layers }
    }

    /// Fuse another schedule after this one and compact the result.
    pub fn then(mut self, other: RoutingSchedule, n: usize) -> RoutingSchedule {
        self.extend(other);
        self.compact(n)
    }

    /// The schedule with every swap endpoint mapped through `f`, layer
    /// structure untouched — depth and size are invariant.
    ///
    /// When `f` is injective and maps coupling edges of the source graph
    /// to coupling edges of the target graph (a graph embedding — e.g. a
    /// [`qroute_topology::GridSymmetry`] vertex map, or a translated
    /// block placement), validity is preserved, and the relabeled
    /// schedule realizes the conjugated permutation `f ∘ π ∘ f⁻¹`. This
    /// is how the routing service replays cached canonical schedules back
    /// into a job's original frame.
    pub fn relabeled(&self, mut f: impl FnMut(usize) -> usize) -> RoutingSchedule {
        RoutingSchedule {
            layers: self
                .layers
                .iter()
                .map(|layer| {
                    SwapLayer::new(layer.swaps.iter().map(|&(u, v)| (f(u), f(v))).collect())
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_topology::Grid;

    fn layer(swaps: &[(usize, usize)]) -> SwapLayer {
        SwapLayer::new(swaps.to_vec())
    }

    #[test]
    fn empty_schedule_is_identity() {
        let s = RoutingSchedule::empty();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.size(), 0);
        assert!(s.realizes(&Permutation::identity(5)));
    }

    #[test]
    fn single_swap_realization() {
        let mut s = RoutingSchedule::empty();
        s.push_layer(layer(&[(0, 1)]));
        let p = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        assert!(s.realizes(&p));
        assert!(!s.realizes(&Permutation::identity(3)));
    }

    #[test]
    fn three_swaps_cycle() {
        // Swaps (0,1) then (1,2): token0 -> 1 -> 2? Let's check:
        // after (0,1): at = [1,0,2]; after (1,2): at = [1,2,0].
        // token 0 at vertex 2, token 1 at vertex 0, token 2 at vertex 1.
        let mut s = RoutingSchedule::empty();
        s.push_layer(layer(&[(0, 1)]));
        s.push_layer(layer(&[(1, 2)]));
        let realized = s.realized_permutation(3);
        assert_eq!(realized.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn empty_layers_are_dropped() {
        let mut s = RoutingSchedule::empty();
        s.push_layer(layer(&[]));
        s.push_layer(layer(&[(0, 1)]));
        s.push_layer(layer(&[]));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn validate_catches_non_edges_and_overlaps() {
        let g = Grid::new(2, 2).to_graph(); // edges: (0,1),(0,2),(1,3),(2,3)
        let ok = RoutingSchedule::from_layers(vec![layer(&[(0, 1), (2, 3)])]);
        assert!(ok.validate_on(&g).is_ok());

        let bad_edge = RoutingSchedule::from_layers(vec![layer(&[(0, 3)])]);
        assert_eq!(
            bad_edge.validate_on(&g),
            Err(ScheduleError::NotAnEdge { layer: 0, pair: (0, 3) })
        );

        let overlap = RoutingSchedule::from_layers(vec![layer(&[(0, 1), (1, 3)])]);
        assert_eq!(
            overlap.validate_on(&g),
            Err(ScheduleError::NotAMatching { layer: 0, vertex: 1 })
        );
    }

    #[test]
    fn compact_preserves_semantics_and_reduces_depth() {
        // Serial swaps on disjoint pairs should compact to depth 1.
        let s = RoutingSchedule::from_layers(vec![
            layer(&[(0, 1)]),
            layer(&[(2, 3)]),
            layer(&[(4, 5)]),
        ]);
        let c = s.compact(6);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(s.realized_permutation(6), c.realized_permutation(6));
    }

    #[test]
    fn compact_respects_dependencies() {
        // (0,1) then (1,2) share vertex 1: cannot be merged.
        let s = RoutingSchedule::from_layers(vec![layer(&[(0, 1)]), layer(&[(1, 2)])]);
        let c = s.compact(3);
        assert_eq!(c.depth(), 2);
        assert_eq!(s.realized_permutation(3), c.realized_permutation(3));
    }

    #[test]
    fn compact_never_increases_depth() {
        let s = RoutingSchedule::from_layers(vec![
            layer(&[(0, 1), (2, 3)]),
            layer(&[(1, 2)]),
            layer(&[(0, 1), (2, 3)]),
        ]);
        let c = s.compact(4);
        assert!(c.depth() <= s.depth());
        assert_eq!(s.realized_permutation(4), c.realized_permutation(4));
    }

    #[test]
    fn then_concatenates_and_compacts() {
        let a = RoutingSchedule::from_layers(vec![layer(&[(0, 1)])]);
        let b = RoutingSchedule::from_layers(vec![layer(&[(2, 3)])]);
        let c = a.then(b, 4);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn relabeled_conjugates_the_realized_permutation() {
        // Map the top row of a 2x3 grid onto the bottom row (a graph
        // embedding); the relabeled schedule must realize the conjugated
        // permutation and stay valid.
        let g = Grid::new(2, 3);
        let s = RoutingSchedule::from_layers(vec![layer(&[(0, 1)]), layer(&[(1, 2)])]);
        let f = |v: usize| v + 3;
        let r = s.relabeled(f);
        assert_eq!(r.depth(), s.depth());
        assert_eq!(r.size(), s.size());
        r.validate_on(&g.to_graph()).unwrap();
        let base = s.realized_permutation(3);
        let lifted = r.realized_permutation(6);
        for v in 0..3 {
            assert_eq!(lifted.apply(f(v)), f(base.apply(v)));
            assert_eq!(lifted.apply(v), v, "untouched vertices stay fixed");
        }
    }

    #[test]
    fn realized_permutation_inverse_relation() {
        // Applying a schedule for π to the identity configuration leaves
        // token v at π(v).
        let mut s = RoutingSchedule::empty();
        s.push_layer(layer(&[(0, 1)]));
        s.push_layer(layer(&[(0, 1)]));
        assert!(s.realizes(&Permutation::identity(2)));
    }
}
