//! A uniform interface over all grid routers, plus the hybrid clamp.
//!
//! §V: "Our locality-aware algorithm can always be made to produce a
//! routing scheme with a smaller or equal depth as opposed to the naive
//! grid routing algorithm. Otherwise, we can replace the output of the
//! locality aware algorithm by that of the naive algorithm. This has
//! virtually no computational overhead." — that is [`RouterKind::Hybrid`].

use crate::grid_route::{naive_grid_route, NaiveOptions};
use crate::local_grid::{main_procedure, LocalRouteOptions};
use crate::pathfinder::{pathfinder_route_grid, pathfinder_route_with, PathfinderOptions};
use crate::schedule::RoutingSchedule;
use crate::token_swap::{
    approximate_token_swapping_with, ats_route_grid, parallel_token_swapping_with, serial_schedule,
    tree_route,
};
use qroute_perm::Permutation;
use qroute_topology::{Grid, GridOracle, Topology};

/// A router was asked to route a topology it does not support. The
/// matching-based routers (locality-aware, naive-grid, hybrid) and the
/// serpentine baseline are defined in grid coordinates and require a full
/// grid; the token-swapping routers accept any connected topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedTopology {
    /// The router's stable label.
    pub router: &'static str,
    /// Human-readable description of the rejected topology.
    pub topology: String,
}

impl std::fmt::Display for UnsupportedTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "router {} supports only full grids, not {} (topology-generic routers: ats, ats-serial, tree, pathfinder)",
            self.router, self.topology
        )
    }
}

impl std::error::Error for UnsupportedTopology {}

/// An object-safe router interface over [`Topology`] instances.
pub trait GridRouter {
    /// Short stable identifier (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Produce a schedule realizing `π` on `topology`, or a typed
    /// [`UnsupportedTopology`] error when this router is grid-only and
    /// the topology is not a full grid.
    fn route_on(
        &self,
        topology: &Topology,
        pi: &Permutation,
    ) -> Result<RoutingSchedule, UnsupportedTopology>;

    /// Produce a schedule realizing `π` on a full `grid` — the
    /// historical entry point; every router supports full grids, so this
    /// cannot fail.
    fn route(&self, grid: Grid, pi: &Permutation) -> RoutingSchedule {
        self.route_on(&Topology::Grid(grid), pi)
            .expect("every router supports full grids")
    }
}

/// The routers evaluated in the paper (and our extra baselines), as a
/// value type convenient for sweeps.
#[derive(Debug, Clone)]
pub enum RouterKind {
    /// The paper's contribution: Algorithm 1/2.
    LocalityAware(LocalRouteOptions),
    /// Alon–Chung–Graham 3-phase with arbitrary matchings.
    NaiveGrid(NaiveOptions),
    /// Locality-aware clamped by the naive router (take the shallower).
    Hybrid(LocalRouteOptions, NaiveOptions),
    /// Parallel approximate token swapping (Miltzow et al. steps, happy
    /// swaps batched into maximal disjoint layers) — the form benchmarked
    /// in the paper's figures.
    Ats,
    /// Serial approximate token swapping, post-hoc parallelized with the
    /// ASAP pass — much deeper; kept to expose how much the parallel
    /// construction matters.
    AtsSerial,
    /// Guaranteed-terminating tree placement (crude baseline; serial
    /// schedule parallelized by the ASAP pass).
    Tree,
    /// Odd–even transposition along the serpentine Hamiltonian path —
    /// the 1-D emulation baseline showing why 2-D routing matters.
    Snake,
    /// Congestion-negotiated per-token A* routing (the PathFinder
    /// rip-up-and-reroute idiom), with an ATS fallback past the round
    /// cap. Shines on sparse partial permutations where the
    /// matching-based routers pay full-permutation cost.
    Pathfinder(PathfinderOptions),
}

impl RouterKind {
    /// Default locality-aware configuration.
    pub fn locality_aware() -> RouterKind {
        RouterKind::LocalityAware(LocalRouteOptions::default())
    }

    /// Default naive configuration (with compaction and transpose, so the
    /// comparison against the locality-aware router is apples-to-apples).
    pub fn naive() -> RouterKind {
        RouterKind::NaiveGrid(NaiveOptions {
            compact: true,
            try_transpose: true,
            ..Default::default()
        })
    }

    /// Default hybrid configuration.
    pub fn hybrid() -> RouterKind {
        RouterKind::Hybrid(
            LocalRouteOptions::default(),
            NaiveOptions { compact: true, try_transpose: true, ..Default::default() },
        )
    }

    /// Default pathfinder configuration.
    pub fn pathfinder() -> RouterKind {
        RouterKind::Pathfinder(PathfinderOptions::default())
    }

    /// Every kind in its default configuration — the canonical router
    /// axis for sweeps and exhaustive test matrices. Adding a variant to
    /// the enum and registering it here enrolls it in the benchmark
    /// matrix and every cross-router property test at once.
    pub fn all_default() -> Vec<RouterKind> {
        vec![
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::hybrid(),
            RouterKind::Ats,
            RouterKind::AtsSerial,
            RouterKind::Tree,
            RouterKind::Snake,
            RouterKind::pathfinder(),
        ]
    }

    /// Whether this kind can route the given topology: every kind
    /// handles full grids; only the topology-generic kinds (`ats`,
    /// `ats-serial`, `tree`, `pathfinder`) handle defective grids,
    /// heavy-hex, brick walls and tori. The routing service checks this
    /// at submit time so unsupported combinations become typed per-job
    /// errors instead of worker panics.
    pub fn supports(&self, topology: &Topology) -> bool {
        topology.as_grid().is_some()
            || matches!(
                self,
                RouterKind::Ats
                    | RouterKind::AtsSerial
                    | RouterKind::Tree
                    | RouterKind::Pathfinder(_)
            )
    }

    /// The stable string label of this kind — the single source of truth
    /// for every router↔label mapping in the workspace (benchmark cells,
    /// JSONL service jobs, report tables). [`GridRouter::name`] delegates
    /// here; the [`std::str::FromStr`] impl parses it back.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::LocalityAware(_) => "locality-aware",
            RouterKind::NaiveGrid(_) => "naive-grid",
            RouterKind::Hybrid(_, _) => "hybrid",
            RouterKind::Ats => "ats",
            RouterKind::AtsSerial => "ats-serial",
            RouterKind::Tree => "tree",
            RouterKind::Snake => "snake",
            RouterKind::Pathfinder(_) => "pathfinder",
        }
    }
}

impl std::str::FromStr for RouterKind {
    type Err = String;

    /// Parse a [`RouterKind::label`] back into the kind in its default
    /// configuration. Unknown labels list the accepted set in the error.
    fn from_str(s: &str) -> Result<RouterKind, String> {
        RouterKind::all_default()
            .into_iter()
            .find(|kind| kind.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = RouterKind::all_default()
                    .iter()
                    .map(|kind| kind.label())
                    .collect();
                format!("unknown router label {s:?}; expected one of {known:?}")
            })
    }
}

impl GridRouter for RouterKind {
    fn name(&self) -> &'static str {
        self.label()
    }

    fn route_on(
        &self,
        topology: &Topology,
        pi: &Permutation,
    ) -> Result<RoutingSchedule, UnsupportedTopology> {
        // The top-level routing span: with no subscriber installed this
        // is one TLS read before the real body runs (no clock reads, no
        // allocations), so the disarmed path is byte- and
        // behavior-identical to the uninstrumented router.
        qroute_obs::trace::span_with(
            "route",
            &[
                ("router", qroute_obs::FieldValue::Str(self.label())),
                ("n", qroute_obs::FieldValue::U64(topology.len() as u64)),
            ],
            || self.route_on_untraced(topology, pi),
        )
    }
}

impl RouterKind {
    /// [`GridRouter::route_on`] minus the tracing span.
    fn route_on_untraced(
        &self,
        topology: &Topology,
        pi: &Permutation,
    ) -> Result<RoutingSchedule, UnsupportedTopology> {
        if let Some(grid) = topology.as_grid() {
            return Ok(match self {
                RouterKind::LocalityAware(opts) => main_procedure(grid, pi, opts),
                RouterKind::NaiveGrid(opts) => naive_grid_route(grid, pi, opts),
                RouterKind::Hybrid(lo, no) => {
                    let local = main_procedure(grid, pi, lo);
                    let naive = naive_grid_route(grid, pi, no);
                    if naive.depth() < local.depth() {
                        naive
                    } else {
                        local
                    }
                }
                RouterKind::Ats => ats_route_grid(grid, pi),
                RouterKind::AtsSerial => {
                    let graph = grid.to_graph();
                    approximate_token_swapping_with(&graph, &GridOracle::new(grid), pi)
                        .parallelized(grid.len())
                }
                RouterKind::Tree => {
                    let graph = grid.to_graph();
                    serial_schedule(&tree_route(&graph, pi)).compact(grid.len())
                }
                RouterKind::Snake => crate::snake::snake_route(grid, pi).compact(grid.len()),
                RouterKind::Pathfinder(opts) => pathfinder_route_grid(grid, pi, opts),
            });
        }
        if !self.supports(topology) {
            return Err(UnsupportedTopology {
                router: self.label(),
                topology: topology.to_string(),
            });
        }
        // Token-swapping path on an arbitrary topology. Route on the
        // compacted frame (dead vertices removed) so the spanning-tree
        // machinery inside ATS and the tree router never sees isolated
        // dead vertices, then relabel the schedule back to topology ids.
        let n = topology.len();
        assert_eq!(pi.len(), n, "permutation size must match the topology");
        if let Err(reason) = topology.permutation_fits(pi.as_slice()) {
            panic!("cannot route on {topology}: {reason}");
        }
        let frame = topology.routing_frame();
        let frame_pi = match &frame.to_topology {
            None => pi.clone(),
            Some(to_topology) => {
                // Invert the frame map and restrict π to alive vertices
                // (dead vertices are fixed points, checked above).
                let mut frame_id = vec![usize::MAX; n];
                for (f, &t) in to_topology.iter().enumerate() {
                    frame_id[t] = f;
                }
                Permutation::from_vec_unchecked(
                    to_topology.iter().map(|&t| frame_id[pi.apply(t)]).collect(),
                )
            }
        };
        let oracle = topology.oracle(&frame.graph);
        let schedule = match self {
            RouterKind::Ats => parallel_token_swapping_with(&frame.graph, &oracle, &frame_pi),
            RouterKind::AtsSerial => {
                approximate_token_swapping_with(&frame.graph, &oracle, &frame_pi)
                    .parallelized(frame.graph.len())
            }
            RouterKind::Tree => {
                serial_schedule(&tree_route(&frame.graph, &frame_pi)).compact(frame.graph.len())
            }
            RouterKind::Pathfinder(opts) => {
                pathfinder_route_with(&frame.graph, &oracle, &frame_pi, opts)
            }
            _ => unreachable!("supports() admitted only topology-generic kinds"),
        };
        Ok(match &frame.to_topology {
            None => schedule,
            Some(to_topology) => schedule.relabeled(|v| to_topology[v]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::{generators, metrics};

    fn all_routers() -> Vec<RouterKind> {
        RouterKind::all_default()
    }

    #[test]
    fn every_router_realizes_every_workload() {
        let grid = Grid::new(6, 5);
        let graph = grid.to_graph();
        let workloads = [
            Permutation::identity(30),
            generators::random(30, 1),
            generators::block_local(grid, 2, 2, 2),
            generators::overlapping_blocks(grid, 3, 3, 2, 2, 3),
            generators::skinny_cycles(grid, 4),
            generators::reversal(30),
        ];
        for router in all_routers() {
            for (k, pi) in workloads.iter().enumerate() {
                let s = router.route(grid, pi);
                assert!(s.realizes(pi), "{} failed workload {k}", router.name());
                s.validate_on(&graph).unwrap();
                assert!(s.depth() >= metrics::max_displacement(grid, pi));
            }
        }
    }

    #[test]
    fn hybrid_never_deeper_than_naive() {
        let grid = Grid::new(8, 8);
        for seed in 0..8 {
            let pi = generators::random(64, seed);
            let hybrid = RouterKind::hybrid().route(grid, &pi);
            let naive = RouterKind::naive().route(grid, &pi);
            assert!(hybrid.depth() <= naive.depth(), "seed {seed}");
        }
    }

    #[test]
    fn hybrid_never_deeper_than_local() {
        let grid = Grid::new(8, 8);
        for seed in 0..8 {
            let pi = generators::overlapping_blocks(grid, 4, 4, 2, 2, seed);
            let hybrid = RouterKind::hybrid().route(grid, &pi);
            let local = RouterKind::locality_aware().route(grid, &pi);
            assert!(hybrid.depth() <= local.depth(), "seed {seed}");
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = all_routers().iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "locality-aware",
                "naive-grid",
                "hybrid",
                "ats",
                "ats-serial",
                "tree",
                "snake",
                "pathfinder"
            ]
        );
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for router in all_routers() {
            let parsed: RouterKind = router.label().parse().expect("label parses");
            assert_eq!(parsed.label(), router.label());
            assert_eq!(parsed.name(), router.name(), "name() delegates to label()");
        }
        let err = "no-such-router".parse::<RouterKind>().unwrap_err();
        assert!(err.contains("no-such-router"), "{err}");
        assert!(err.contains("locality-aware"), "error lists labels: {err}");
    }

    #[test]
    fn single_cell_grid() {
        let grid = Grid::new(1, 1);
        for router in all_routers() {
            let s = router.route(grid, &Permutation::identity(1));
            assert_eq!(s.depth(), 0, "{}", router.name());
        }
    }

    /// π over a topology's ids that permutes alive vertices randomly and
    /// fixes every dead one.
    fn alive_random(topology: &Topology, seed: u64) -> Permutation {
        let n = topology.len();
        let alive: Vec<usize> = (0..n).filter(|&v| topology.is_alive(v)).collect();
        let shuffle = generators::random(alive.len(), seed);
        let mut table: Vec<usize> = (0..n).collect();
        for (k, &v) in alive.iter().enumerate() {
            table[v] = alive[shuffle.apply(k)];
        }
        Permutation::from_vec(table).unwrap()
    }

    #[test]
    fn token_swap_routers_realize_pi_on_every_topology() {
        let topologies = [
            Topology::grid_with_defects(Grid::new(5, 5), &[6, 18], &[(0, 1)]).unwrap(),
            Topology::heavy_hex(3, 9),
            Topology::brick_wall(4, 5),
            Topology::torus(3, 5).unwrap(),
        ];
        for topology in &topologies {
            let graph = topology.graph();
            for router in [
                RouterKind::Ats,
                RouterKind::AtsSerial,
                RouterKind::Tree,
                RouterKind::pathfinder(),
            ] {
                for seed in 0..3 {
                    let pi = alive_random(topology, seed);
                    let s = router.route_on(topology, &pi).unwrap();
                    assert!(s.realizes(&pi), "{router:?} on {topology} seed {seed}");
                    s.validate_on(&graph).unwrap();
                }
            }
        }
    }

    #[test]
    fn grid_only_routers_return_typed_errors_off_grid() {
        let topology = Topology::heavy_hex(2, 5);
        let pi = Permutation::identity(topology.len());
        for router in [
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::hybrid(),
            RouterKind::Snake,
        ] {
            assert!(!router.supports(&topology));
            let err = router.route_on(&topology, &pi).unwrap_err();
            assert_eq!(err.router, router.label());
            let msg = err.to_string();
            assert!(msg.contains("full grids"), "{msg}");
            assert!(msg.contains("heavy-hex"), "{msg}");
        }
        for router in [
            RouterKind::Ats,
            RouterKind::AtsSerial,
            RouterKind::Tree,
            RouterKind::pathfinder(),
        ] {
            assert!(router.supports(&topology));
        }
    }

    #[test]
    fn route_on_a_full_grid_matches_route() {
        let grid = Grid::new(5, 4);
        let topology = Topology::from(grid);
        for router in all_routers() {
            for seed in 0..2 {
                let pi = generators::random(grid.len(), seed);
                let via_topology = router.route_on(&topology, &pi).unwrap();
                let via_grid = router.route(grid, &pi);
                assert_eq!(via_topology.depth(), via_grid.depth(), "{}", router.name());
                assert_eq!(via_topology.size(), via_grid.size(), "{}", router.name());
            }
        }
    }
}
