//! A uniform interface over all grid routers, plus the hybrid clamp.
//!
//! §V: "Our locality-aware algorithm can always be made to produce a
//! routing scheme with a smaller or equal depth as opposed to the naive
//! grid routing algorithm. Otherwise, we can replace the output of the
//! locality aware algorithm by that of the naive algorithm. This has
//! virtually no computational overhead." — that is [`RouterKind::Hybrid`].

use crate::grid_route::{naive_grid_route, NaiveOptions};
use crate::local_grid::{main_procedure, LocalRouteOptions};
use crate::schedule::RoutingSchedule;
use crate::token_swap::{
    approximate_token_swapping_with, ats_route_grid, serial_schedule, tree_route,
};
use qroute_perm::Permutation;
use qroute_topology::{Grid, GridOracle};

/// An object-safe router interface for grid instances.
pub trait GridRouter {
    /// Short stable identifier (used in benchmark tables).
    fn name(&self) -> &'static str;
    /// Produce a schedule realizing `π` on `grid`.
    fn route(&self, grid: Grid, pi: &Permutation) -> RoutingSchedule;
}

/// The routers evaluated in the paper (and our extra baselines), as a
/// value type convenient for sweeps.
#[derive(Debug, Clone)]
pub enum RouterKind {
    /// The paper's contribution: Algorithm 1/2.
    LocalityAware(LocalRouteOptions),
    /// Alon–Chung–Graham 3-phase with arbitrary matchings.
    NaiveGrid(NaiveOptions),
    /// Locality-aware clamped by the naive router (take the shallower).
    Hybrid(LocalRouteOptions, NaiveOptions),
    /// Parallel approximate token swapping (Miltzow et al. steps, happy
    /// swaps batched into maximal disjoint layers) — the form benchmarked
    /// in the paper's figures.
    Ats,
    /// Serial approximate token swapping, post-hoc parallelized with the
    /// ASAP pass — much deeper; kept to expose how much the parallel
    /// construction matters.
    AtsSerial,
    /// Guaranteed-terminating tree placement (crude baseline; serial
    /// schedule parallelized by the ASAP pass).
    Tree,
    /// Odd–even transposition along the serpentine Hamiltonian path —
    /// the 1-D emulation baseline showing why 2-D routing matters.
    Snake,
}

impl RouterKind {
    /// Default locality-aware configuration.
    pub fn locality_aware() -> RouterKind {
        RouterKind::LocalityAware(LocalRouteOptions::default())
    }

    /// Default naive configuration (with compaction and transpose, so the
    /// comparison against the locality-aware router is apples-to-apples).
    pub fn naive() -> RouterKind {
        RouterKind::NaiveGrid(NaiveOptions {
            compact: true,
            try_transpose: true,
            ..Default::default()
        })
    }

    /// Default hybrid configuration.
    pub fn hybrid() -> RouterKind {
        RouterKind::Hybrid(
            LocalRouteOptions::default(),
            NaiveOptions { compact: true, try_transpose: true, ..Default::default() },
        )
    }

    /// Every kind in its default configuration — the canonical router
    /// axis for sweeps and exhaustive test matrices. Adding a variant to
    /// the enum and registering it here enrolls it in the benchmark
    /// matrix and every cross-router property test at once.
    pub fn all_default() -> Vec<RouterKind> {
        vec![
            RouterKind::locality_aware(),
            RouterKind::naive(),
            RouterKind::hybrid(),
            RouterKind::Ats,
            RouterKind::AtsSerial,
            RouterKind::Tree,
            RouterKind::Snake,
        ]
    }

    /// The stable string label of this kind — the single source of truth
    /// for every router↔label mapping in the workspace (benchmark cells,
    /// JSONL service jobs, report tables). [`GridRouter::name`] delegates
    /// here; the [`std::str::FromStr`] impl parses it back.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::LocalityAware(_) => "locality-aware",
            RouterKind::NaiveGrid(_) => "naive-grid",
            RouterKind::Hybrid(_, _) => "hybrid",
            RouterKind::Ats => "ats",
            RouterKind::AtsSerial => "ats-serial",
            RouterKind::Tree => "tree",
            RouterKind::Snake => "snake",
        }
    }
}

impl std::str::FromStr for RouterKind {
    type Err = String;

    /// Parse a [`RouterKind::label`] back into the kind in its default
    /// configuration. Unknown labels list the accepted set in the error.
    fn from_str(s: &str) -> Result<RouterKind, String> {
        RouterKind::all_default()
            .into_iter()
            .find(|kind| kind.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = RouterKind::all_default()
                    .iter()
                    .map(|kind| kind.label())
                    .collect();
                format!("unknown router label {s:?}; expected one of {known:?}")
            })
    }
}

impl GridRouter for RouterKind {
    fn name(&self) -> &'static str {
        self.label()
    }

    fn route(&self, grid: Grid, pi: &Permutation) -> RoutingSchedule {
        match self {
            RouterKind::LocalityAware(opts) => main_procedure(grid, pi, opts),
            RouterKind::NaiveGrid(opts) => naive_grid_route(grid, pi, opts),
            RouterKind::Hybrid(lo, no) => {
                let local = main_procedure(grid, pi, lo);
                let naive = naive_grid_route(grid, pi, no);
                if naive.depth() < local.depth() {
                    naive
                } else {
                    local
                }
            }
            RouterKind::Ats => ats_route_grid(grid, pi),
            RouterKind::AtsSerial => {
                let graph = grid.to_graph();
                approximate_token_swapping_with(&graph, &GridOracle::new(grid), pi)
                    .parallelized(grid.len())
            }
            RouterKind::Tree => {
                let graph = grid.to_graph();
                serial_schedule(&tree_route(&graph, pi)).compact(grid.len())
            }
            RouterKind::Snake => crate::snake::snake_route(grid, pi).compact(grid.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::{generators, metrics};

    fn all_routers() -> Vec<RouterKind> {
        RouterKind::all_default()
    }

    #[test]
    fn every_router_realizes_every_workload() {
        let grid = Grid::new(6, 5);
        let graph = grid.to_graph();
        let workloads = [
            Permutation::identity(30),
            generators::random(30, 1),
            generators::block_local(grid, 2, 2, 2),
            generators::overlapping_blocks(grid, 3, 3, 2, 2, 3),
            generators::skinny_cycles(grid, 4),
            generators::reversal(30),
        ];
        for router in all_routers() {
            for (k, pi) in workloads.iter().enumerate() {
                let s = router.route(grid, pi);
                assert!(s.realizes(pi), "{} failed workload {k}", router.name());
                s.validate_on(&graph).unwrap();
                assert!(s.depth() >= metrics::max_displacement(grid, pi));
            }
        }
    }

    #[test]
    fn hybrid_never_deeper_than_naive() {
        let grid = Grid::new(8, 8);
        for seed in 0..8 {
            let pi = generators::random(64, seed);
            let hybrid = RouterKind::hybrid().route(grid, &pi);
            let naive = RouterKind::naive().route(grid, &pi);
            assert!(hybrid.depth() <= naive.depth(), "seed {seed}");
        }
    }

    #[test]
    fn hybrid_never_deeper_than_local() {
        let grid = Grid::new(8, 8);
        for seed in 0..8 {
            let pi = generators::overlapping_blocks(grid, 4, 4, 2, 2, seed);
            let hybrid = RouterKind::hybrid().route(grid, &pi);
            let local = RouterKind::locality_aware().route(grid, &pi);
            assert!(hybrid.depth() <= local.depth(), "seed {seed}");
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = all_routers().iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "locality-aware",
                "naive-grid",
                "hybrid",
                "ats",
                "ats-serial",
                "tree",
                "snake"
            ]
        );
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for router in all_routers() {
            let parsed: RouterKind = router.label().parse().expect("label parses");
            assert_eq!(parsed.label(), router.label());
            assert_eq!(parsed.name(), router.name(), "name() delegates to label()");
        }
        let err = "no-such-router".parse::<RouterKind>().unwrap_err();
        assert!(err.contains("no-such-router"), "{err}");
        assert!(err.contains("locality-aware"), "error lists labels: {err}");
    }

    #[test]
    fn single_cell_grid() {
        let grid = Grid::new(1, 1);
        for router in all_routers() {
            let s = router.route(grid, &Permutation::identity(1));
            assert_eq!(s.depth(), 0, "{}", router.name());
        }
    }
}
