//! Approximate token swapping (ATS) — the baseline the paper compares
//! against — plus a guaranteed-terminating tree router.
//!
//! ATS is the 4-approximation of Miltzow, Narins, Okamoto, Rote, Thomas
//! and Uno ("Approximation and hardness for token swapping", 2016), used
//! as the routing primitive in the Childs–Schoute–Unsal transpiler that
//! §V benchmarks against. The serial algorithm repeatedly:
//!
//! * walks from an unfinished token along "strictly closer to target"
//!   arcs;
//! * on revisiting a vertex, cyclically shifts the discovered directed
//!   cycle (every token on it advances one step; a 2-cycle is exactly a
//!   *happy swap*);
//! * on reaching a vertex whose token is already home, performs one
//!   *unhappy swap* across the final arc.
//!
//! The swap list is then *parallelized* into layers with the greedy ASAP
//! pass ([`RoutingSchedule::compact`]) to measure depth, mirroring how
//! depth is extracted from token swapping in qubit-routing practice.
//!
//! [`tree_route`] provides a simple `O(n²)`-swap router with an
//! unconditional termination proof (place tokens onto the leaves of a
//! shrinking spanning tree); it serves as a crude baseline and as the
//! safety fallback behind ATS's swap budget.
//!
//! Distances are served by a [`DistanceOracle`] instead of a
//! materialized all-pairs table: `O(1)` closed-form on grids
//! ([`GridOracle`]), lazily cached BFS rows on arbitrary graphs
//! ([`LazyBfsOracle`]). The serial walk additionally *resumes in place*
//! after each swap event rather than re-walking its deterministic
//! prefix; both changes are behavior-preserving (pinned by tests against
//! a verbatim copy of the table-based implementation) and are what let
//! the benchmark matrix route side-64 grids.

use crate::schedule::{RoutingSchedule, SwapLayer};
use qroute_perm::Permutation;
use qroute_topology::{dist, DistanceOracle, Graph, Grid, GridOracle, LazyBfsOracle};

/// Outcome of the serial ATS run.
#[derive(Debug, Clone)]
pub struct AtsOutcome {
    /// The serial swap sequence, in execution order.
    pub serial_swaps: Vec<(usize, usize)>,
    /// `true` if the safety budget was hit and [`tree_route`] finished the
    /// instance (never observed on connected coupling graphs; kept for
    /// honesty).
    pub fallback_used: bool,
}

impl AtsOutcome {
    /// Parallelize the serial swaps into disjoint layers (greedy ASAP),
    /// preserving per-vertex order and hence the realized permutation.
    ///
    /// Runs [`RoutingSchedule::compact_swaps`] directly over the borrowed
    /// swap list — no intermediate schedule, no clone of `serial_swaps`.
    pub fn parallelized(&self, n: usize) -> RoutingSchedule {
        RoutingSchedule::compact_swaps(n, self.serial_swaps.iter().copied())
    }

    /// The serial swap count (the objective ATS approximates).
    pub fn num_swaps(&self) -> usize {
        self.serial_swaps.len()
    }
}

/// Serial approximate token swapping on a connected graph, with distances
/// served by a [`LazyBfsOracle`] (one BFS per destination actually
/// walked, instead of the full `O(n²)` APSP table this function used to
/// materialize). Grid callers should prefer
/// [`approximate_token_swapping_with`] + [`GridOracle`] for `O(1)`
/// closed-form distances and zero distance-table memory.
///
/// # Panics
/// Panics when `π` and `graph` disagree in size, or when some destination
/// is unreachable (disconnected graph).
pub fn approximate_token_swapping(graph: &Graph, pi: &Permutation) -> AtsOutcome {
    approximate_token_swapping_with(graph, &LazyBfsOracle::new(graph), pi)
}

/// [`approximate_token_swapping`] with an explicit [`DistanceOracle`].
///
/// The oracle must answer shortest-path distances of `graph` (the
/// property tests pin [`GridOracle`]/[`LazyBfsOracle`] against BFS);
/// distances drive *which* swap is chosen, so an inconsistent oracle
/// produces wrong routings, not just slow ones.
///
/// # Panics
/// Panics when `π`, `graph` and `oracle` disagree in size, or when some
/// destination is unreachable (disconnected graph).
pub fn approximate_token_swapping_with(
    graph: &Graph,
    oracle: &impl DistanceOracle,
    pi: &Permutation,
) -> AtsOutcome {
    let n = graph.len();
    assert_eq!(pi.len(), n, "permutation size must match graph");
    assert_eq!(oracle.len(), n, "oracle size must match graph");
    for v in 0..n {
        assert_ne!(
            oracle.dist(v, pi.apply(v)),
            dist::UNREACHABLE,
            "destination of {v} unreachable; ATS needs a connected graph"
        );
    }

    // dest[v] = destination of the token currently at v.
    let mut dest: Vec<usize> = (0..n).map(|v| pi.apply(v)).collect();
    let mut swaps: Vec<(usize, usize)> = Vec::new();

    // Unfinished-vertex set with O(1) insert/remove.
    let mut todo: Vec<usize> = (0..n).filter(|&v| dest[v] != v).collect();
    let mut todo_pos: Vec<usize> = vec![usize::MAX; n];
    for (k, &v) in todo.iter().enumerate() {
        todo_pos[v] = k;
    }

    let phi0: usize = (0..n).map(|v| oracle.dist(v, dest[v]) as usize).sum();
    let budget = 4 * phi0 + 8 * n + 64;

    // Walk bookkeeping with epoch stamping (no per-iteration clearing).
    let mut visited_epoch: Vec<u64> = vec![0; n];
    let mut path_pos: Vec<usize> = vec![0; n];
    let mut epoch: u64 = 0;
    let mut path: Vec<usize> = Vec::with_capacity(n);

    macro_rules! do_swap {
        ($u:expr, $v:expr) => {{
            let (u, v) = ($u, $v);
            swaps.push((u, v));
            dest.swap(u, v);
            for w in [u, v] {
                let finished = dest[w] == w;
                let listed = todo_pos[w] != usize::MAX;
                if finished && listed {
                    let k = todo_pos[w];
                    let last = *todo.last().expect("nonempty");
                    todo.swap_remove(k);
                    todo_pos[w] = usize::MAX;
                    if last != w {
                        todo_pos[last] = k;
                    }
                } else if !finished && !listed {
                    todo_pos[w] = todo.len();
                    todo.push(w);
                }
            }
        }};
    }

    let mut fallback_used = false;
    while !todo.is_empty() {
        // One cooperative cancellation probe per cycle walk.
        crate::budget::checkpoint();
        if swaps.len() > budget {
            // Theoretically unreachable per Miltzow et al.; guaranteed
            // finisher keeps the library total regardless. `dest` is not
            // consulted after the handoff, so move it instead of cloning.
            fallback_used = true;
            let rest = Permutation::from_vec_unchecked(std::mem::take(&mut dest));
            for (u, v) in tree_route(graph, &rest) {
                swaps.push((u, v));
            }
            break;
        }

        epoch += 1;
        path.clear();
        let start = todo[0];
        visited_epoch[start] = epoch;
        path_pos[start] = 0;
        path.push(start);
        let mut cur = start;
        // Walk-resumption invariant: `visited_epoch[v] == epoch ⟺ v ∈
        // path`, and `path` is exactly the prefix a *fresh* walk from
        // `start` would deterministically retrace (every arc depends only
        // on the walked vertex's own dest). After a swap event that leaves
        // `start` at `todo[0]` and the prefix dests untouched, the next
        // scheduled walk is therefore this walk's continuation — so we
        // continue in place instead of re-walking the prefix, which turns
        // the O(walk-length) restart cost per cycle into O(1).
        loop {
            let target = dest[cur];
            let dcur = oracle.dist(cur, target);
            // Deterministic choice: smallest-id neighbor strictly closer.
            let next = graph
                .neighbors(cur)
                .find(|&w| oracle.dist(w, target) < dcur)
                .expect("connected graph: an unfinished token has a closer neighbor");
            if dest[next] == next {
                // Unhappy swap: displace a finished token by one. Neither
                // endpoint finishes (cur's token now targets next), so
                // `start` keeps todo slot 0 and no prefix dest changed:
                // resume from cur with its new token.
                do_swap!(cur, next);
                if swaps.len() <= budget {
                    debug_assert_eq!(todo[0], start);
                    continue;
                }
                break;
            }
            if visited_epoch[next] == epoch {
                // Directed cycle path[pos..]: advance every token one arc.
                let pos = path_pos[next];
                let cycle = &path[pos..];
                for k in (1..cycle.len()).rev() {
                    do_swap!(cycle[k - 1], cycle[k]);
                }
                if pos > 0 && swaps.len() <= budget {
                    // Only cycle vertices changed, and `start ∉ cycle`
                    // (pos > 0), so the fresh walk would retrace
                    // path[..pos] unchanged and then re-evaluate the
                    // rotated cycle head. Rewind to that state: unmark the
                    // cycle, keep the prefix, step again from path[pos-1].
                    for &v in &path[pos..] {
                        visited_epoch[v] = 0;
                    }
                    path.truncate(pos);
                    cur = path[pos - 1];
                    debug_assert_eq!(todo[0], start);
                    continue;
                }
                break;
            }
            visited_epoch[next] = epoch;
            path_pos[next] = path.len();
            path.push(next);
            cur = next;
        }
    }

    // On the fallback path `dest` was moved out (empty), which passes
    // trivially; tree_route's own invariants cover that case.
    debug_assert!(dest.iter().enumerate().all(|(v, &d)| v == d));
    AtsOutcome { serial_swaps: swaps, fallback_used }
}

/// **Parallel** approximate token swapping, the form benchmarked in the
/// paper's Figures 4–5 (the ATS implementation of Childs–Schoute–Unsal
/// produces swap *layers*, not a serial list):
///
/// * each round greedily applies a maximal vertex-disjoint set of *happy*
///   swaps (both tokens strictly closer) as one layer;
/// * when no happy swap exists anywhere, one serial Miltzow step (cycle
///   shift or unhappy swap) unsticks the configuration;
/// * a final ASAP compaction merges whatever independent chains remain.
///
/// Termination mirrors the serial algorithm (happy layers strictly
/// decrease `Φ = Σ dist`; stuck steps are exactly the serial case), with
/// the same guaranteed-finisher budget.
pub fn parallel_token_swapping(graph: &Graph, pi: &Permutation) -> RoutingSchedule {
    parallel_token_swapping_with(graph, &LazyBfsOracle::new(graph), pi)
}

/// [`parallel_token_swapping`] with an explicit [`DistanceOracle`] (see
/// [`approximate_token_swapping_with`] for the oracle contract).
///
/// # Panics
/// Panics when `π`, `graph` and `oracle` disagree in size, or when some
/// destination is unreachable (disconnected graph).
pub fn parallel_token_swapping_with(
    graph: &Graph,
    oracle: &impl DistanceOracle,
    pi: &Permutation,
) -> RoutingSchedule {
    let n = graph.len();
    assert_eq!(pi.len(), n, "permutation size must match graph");
    assert_eq!(oracle.len(), n, "oracle size must match graph");
    for v in 0..n {
        assert_ne!(
            oracle.dist(v, pi.apply(v)),
            dist::UNREACHABLE,
            "destination of {v} unreachable; ATS needs a connected graph"
        );
    }

    let mut dest: Vec<usize> = (0..n).map(|v| pi.apply(v)).collect();
    let mut schedule = RoutingSchedule::empty();
    let phi0: usize = (0..n).map(|v| oracle.dist(v, dest[v]) as usize).sum();
    let budget_layers = 4 * phi0 + 8 * n + 64;

    let mut used = vec![u64::MAX; n];
    let mut round: u64 = 0;
    let mut visited_epoch = vec![0u64; n];
    let mut path_pos = vec![0usize; n];
    let mut epoch = 0u64;
    let mut path: Vec<usize> = Vec::with_capacity(n);

    while let Some(start) = (0..n).find(|&v| dest[v] != v) {
        // One cooperative cancellation probe per parallel round.
        crate::budget::checkpoint();
        if schedule.depth() > budget_layers {
            qroute_obs::trace::event(
                "ats.fallback",
                &[
                    ("round", qroute_obs::FieldValue::U64(round)),
                    (
                        "depth",
                        qroute_obs::FieldValue::U64(schedule.depth() as u64),
                    ),
                ],
            );
            let rest = Permutation::from_vec_unchecked(dest.clone());
            for (u, v) in tree_route(graph, &rest) {
                schedule.push_layer(SwapLayer::new(vec![(u, v)]));
                dest.swap(u, v);
            }
            break;
        }
        round += 1;
        // Happy layer: maximal disjoint set in canonical edge order.
        let mut layer = SwapLayer::default();
        for &(u, v) in graph.edges() {
            if used[u] == round || used[v] == round {
                continue;
            }
            let (du, dv) = (dest[u], dest[v]);
            if du != u
                && dv != v
                && oracle.dist(v, du) < oracle.dist(u, du)
                && oracle.dist(u, dv) < oracle.dist(v, dv)
            {
                layer.swaps.push((u, v));
                used[u] = round;
                used[v] = round;
            }
        }
        if !layer.is_empty() {
            qroute_obs::trace::event(
                "ats.round",
                &[
                    ("round", qroute_obs::FieldValue::U64(round)),
                    ("kind", qroute_obs::FieldValue::Str("happy")),
                    (
                        "swaps",
                        qroute_obs::FieldValue::U64(layer.swaps.len() as u64),
                    ),
                ],
            );
            for &(u, v) in &layer.swaps {
                dest.swap(u, v);
            }
            schedule.push_layer(layer);
            continue;
        }

        // Stuck: no happy swap anywhere. Run Miltzow walks from *every*
        // unfinished token over vertices not yet claimed in this phase;
        // each walk yields a swap chain (cycle shift or unhappy step).
        // Chains are vertex-disjoint, so chain i's j-th swap shares a
        // layer with chain k's j-th swap — regions unstick in parallel.
        let mut claimed = vec![false; n];
        let mut chains: Vec<Vec<(usize, usize)>> = Vec::new();
        for s in start..n {
            if dest[s] == s || claimed[s] {
                continue;
            }
            epoch += 1;
            path.clear();
            visited_epoch[s] = epoch;
            path_pos[s] = 0;
            path.push(s);
            let mut cur = s;
            let chain: Option<Vec<(usize, usize)>> = loop {
                let target = dest[cur];
                let dcur = oracle.dist(cur, target);
                let next = graph
                    .neighbors(cur)
                    .find(|&w| !claimed[w] && oracle.dist(w, target) < dcur);
                let Some(next) = next else { break None }; // boxed in by claims
                if dest[next] == next {
                    break Some(vec![(cur, next)]); // unhappy swap
                }
                if visited_epoch[next] == epoch {
                    let pos = path_pos[next];
                    let cycle = &path[pos..];
                    break Some(
                        (1..cycle.len())
                            .rev()
                            .map(|k| (cycle[k - 1], cycle[k]))
                            .collect(),
                    );
                }
                visited_epoch[next] = epoch;
                path_pos[next] = path.len();
                path.push(next);
                cur = next;
            };
            if let Some(swaps) = chain {
                for &(a, b) in &swaps {
                    claimed[a] = true;
                    claimed[b] = true;
                }
                chains.push(swaps);
            }
        }
        // The first walk runs over a claim-free graph and always finds a
        // cycle or a home token, so every stuck phase makes progress.
        debug_assert!(!chains.is_empty());
        let maxlen = chains.iter().map(Vec::len).max().unwrap_or(0);
        qroute_obs::trace::event(
            "ats.round",
            &[
                ("round", qroute_obs::FieldValue::U64(round)),
                ("kind", qroute_obs::FieldValue::Str("stuck")),
                ("chains", qroute_obs::FieldValue::U64(chains.len() as u64)),
                ("max_chain", qroute_obs::FieldValue::U64(maxlen as u64)),
            ],
        );
        for j in 0..maxlen {
            let mut layer = SwapLayer::default();
            for ch in &chains {
                if let Some(&s) = ch.get(j) {
                    layer.swaps.push(s);
                }
            }
            for &(a, b) in &layer.swaps {
                dest.swap(a, b);
            }
            schedule.push_layer(layer);
        }
    }

    schedule.compact(n)
}

/// ATS on a grid, in the parallel, depth-measured form the paper's
/// Figures 4 and 5 evaluate. Distances come from the closed-form
/// [`GridOracle`] — no BFS, no distance table — which is what lets the
/// benchmark matrix reach side 64 (a side-64 APSP table alone is 64 MiB).
pub fn ats_route_grid(grid: Grid, pi: &Permutation) -> RoutingSchedule {
    let graph = grid.to_graph();
    parallel_token_swapping_with(&graph, &GridOracle::new(grid), pi)
}

/// Guaranteed-terminating token router on any connected graph.
///
/// Strategy: take a BFS spanning tree; process vertices in reverse BFS
/// order (so the current vertex is always a leaf of the remaining tree);
/// bubble the token destined for that vertex to it along the tree path;
/// then retire the vertex. Each retirement is permanent, so the algorithm
/// terminates after at most `n` placements of at most `n-1` swaps each.
pub fn tree_route(graph: &Graph, pi: &Permutation) -> Vec<(usize, usize)> {
    let n = graph.len();
    assert_eq!(pi.len(), n);
    if n == 0 {
        return Vec::new();
    }
    assert!(graph.is_connected(), "tree routing needs a connected graph");

    // BFS tree from vertex 0.
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[0] = true;
    queue.push_back(0);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in graph.neighbors(v) {
            if !seen[w] {
                seen[w] = true;
                parent[w] = v;
                queue.push_back(w);
            }
        }
    }

    let mut dest: Vec<usize> = (0..n).map(|v| pi.apply(v)).collect();
    let mut at_of_token_dest: Vec<usize> = vec![usize::MAX; n];
    for v in 0..n {
        at_of_token_dest[dest[v]] = v;
    }
    let mut swaps = Vec::new();
    // Reverse BFS order: children retire before parents, so the remaining
    // vertex set is always connected in the tree and tree paths between
    // active vertices avoid retired ones... path to the *root side* only.
    for &target in order.iter().rev() {
        // One cooperative cancellation probe per retirement.
        crate::budget::checkpoint();
        let mut cur = at_of_token_dest[target];
        // Bubble along tree path cur -> target. Both endpoints are active;
        // the tree path runs through their common ancestor, all of which
        // are active (ancestors retire later in reverse BFS order).
        let path = tree_path(&parent, cur, target);
        for &next in &path[1..] {
            swaps.push((cur, next));
            dest.swap(cur, next);
            at_of_token_dest[dest[cur]] = cur;
            at_of_token_dest[dest[next]] = next;
            cur = next;
        }
        debug_assert_eq!(dest[target], target);
    }
    swaps
}

/// Path between two vertices in a rooted tree (via lowest common
/// ancestor walk), inclusive of both endpoints.
fn tree_path(parent: &[usize], a: usize, b: usize) -> Vec<usize> {
    // Climb both to the root, recording ancestors.
    let climb = |mut v: usize| {
        let mut up = vec![v];
        while parent[v] != usize::MAX {
            v = parent[v];
            up.push(v);
        }
        up
    };
    let ua = climb(a);
    let ub = climb(b);
    // Find LCA: longest common suffix.
    let mut ia = ua.len();
    let mut ib = ub.len();
    while ia > 0 && ib > 0 && ua[ia - 1] == ub[ib - 1] {
        ia -= 1;
        ib -= 1;
    }
    // ua[..=ia] is a's side up to LCA (inclusive at index ia), ub[..ib]
    // reversed comes back down to b.
    let mut path = ua[..=ia].to_vec();
    path.extend(ub[..ib].iter().rev());
    path
}

/// Realize a serial swap list as a (serial) schedule: one layer per swap.
pub fn serial_schedule(swaps: &[(usize, usize)]) -> RoutingSchedule {
    RoutingSchedule::from_layers(
        swaps
            .iter()
            .map(|&(u, v)| SwapLayer::new(vec![(u, v)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::{generators, metrics};
    use qroute_topology::{gridlike, ApspOracle, Cycle, CycleOracle, Path};

    /// The pre-overhaul serial ATS, verbatim: full APSP table, generic
    /// neighbor scan, and a fresh walk from `todo[0]` after every swap
    /// event. The optimized implementation (closed-form closer-neighbor
    /// steps, walk resumption) must reproduce its swap sequence *exactly*
    /// — routing behavior is pinned, only speed may differ.
    fn reference_serial_ats(graph: &Graph, pi: &Permutation) -> Vec<(usize, usize)> {
        let n = graph.len();
        let apsp = dist::all_pairs(graph);
        let mut dest: Vec<usize> = (0..n).map(|v| pi.apply(v)).collect();
        let mut swaps = Vec::new();
        let mut visited = vec![false; n];
        let mut path_pos = vec![0usize; n];
        // The todo ordering is intrinsic to the algorithm, so the
        // reference replays the same list discipline.
        let mut todo: Vec<usize> = (0..n).filter(|&v| dest[v] != v).collect();
        let mut todo_pos: Vec<usize> = vec![usize::MAX; n];
        for (k, &v) in todo.iter().enumerate() {
            todo_pos[v] = k;
        }
        macro_rules! ref_swap {
            ($u:expr, $v:expr) => {{
                let (u, v) = ($u, $v);
                swaps.push((u, v));
                dest.swap(u, v);
                for w in [u, v] {
                    let finished = dest[w] == w;
                    let listed = todo_pos[w] != usize::MAX;
                    if finished && listed {
                        let k = todo_pos[w];
                        let last = *todo.last().unwrap();
                        todo.swap_remove(k);
                        todo_pos[w] = usize::MAX;
                        if last != w {
                            todo_pos[last] = k;
                        }
                    } else if !finished && !listed {
                        todo_pos[w] = todo.len();
                        todo.push(w);
                    }
                }
            }};
        }
        let mut path: Vec<usize> = Vec::new();
        while !todo.is_empty() {
            for &v in &path {
                visited[v] = false;
            }
            path.clear();
            let start = todo[0];
            visited[start] = true;
            path_pos[start] = 0;
            path.push(start);
            let mut cur = start;
            loop {
                let target = dest[cur];
                let dcur = apsp[cur][target];
                let next = graph
                    .neighbors(cur)
                    .find(|&w| apsp[w][target] < dcur)
                    .expect("connected");
                if dest[next] == next {
                    ref_swap!(cur, next);
                    break;
                }
                if visited[next] {
                    let pos = path_pos[next];
                    let cycle = &path[pos..];
                    for k in (1..cycle.len()).rev() {
                        ref_swap!(cycle[k - 1], cycle[k]);
                    }
                    break;
                }
                visited[next] = true;
                path_pos[next] = path.len();
                path.push(next);
                cur = next;
            }
        }
        swaps
    }

    #[test]
    fn optimized_serial_walk_matches_reference() {
        // Grids (closed-form fast path + resumption) against the verbatim
        // old implementation, across shapes that exercise 1-D grids,
        // squares and tall/wide rectangles.
        for (m, n) in [(1, 9), (4, 4), (3, 7), (8, 8), (6, 2)] {
            let grid = Grid::new(m, n);
            let g = grid.to_graph();
            for seed in 0..4 {
                let pi = generators::random(grid.len(), seed);
                let reference = reference_serial_ats(&g, &pi);
                let fast = approximate_token_swapping_with(&g, &GridOracle::new(grid), &pi);
                assert_eq!(fast.serial_swaps, reference, "{m}x{n} seed {seed}");
                // Every oracle backend must agree swap-for-swap.
                let lazy = approximate_token_swapping(&g, &pi);
                assert_eq!(lazy.serial_swaps, reference, "{m}x{n} seed {seed} lazy");
                let apsp = approximate_token_swapping_with(&g, &ApspOracle::new(&g), &pi);
                assert_eq!(apsp.serial_swaps, reference, "{m}x{n} seed {seed} apsp");
            }
        }
        // Generic graphs (scan path + resumption) and cycles (closed-form
        // cycle fast path).
        for g in [gridlike::brick_wall(4, 5), gridlike::heavy_hex(3, 9)] {
            for seed in 0..3 {
                let pi = generators::random(g.len(), seed);
                let reference = reference_serial_ats(&g, &pi);
                assert_eq!(
                    approximate_token_swapping(&g, &pi).serial_swaps,
                    reference,
                    "seed {seed}"
                );
            }
        }
        let c = Cycle::new(8);
        let g = c.to_graph();
        for seed in 0..3 {
            let pi = generators::random(8, seed);
            let reference = reference_serial_ats(&g, &pi);
            let fast = approximate_token_swapping_with(&g, &CycleOracle::new(c), &pi);
            assert_eq!(fast.serial_swaps, reference, "cycle seed {seed}");
        }
    }

    #[test]
    fn parallel_ats_oracle_backends_agree() {
        for (m, n) in [(4, 4), (5, 7), (1, 8)] {
            let grid = Grid::new(m, n);
            let g = grid.to_graph();
            for seed in 0..3 {
                let pi = generators::random(grid.len(), seed);
                let fast = parallel_token_swapping_with(&g, &GridOracle::new(grid), &pi);
                let lazy = parallel_token_swapping(&g, &pi);
                let apsp = parallel_token_swapping_with(&g, &ApspOracle::new(&g), &pi);
                assert_eq!(fast, lazy, "{m}x{n} seed {seed}");
                assert_eq!(fast, apsp, "{m}x{n} seed {seed}");
            }
        }
    }

    fn check_ats(graph: &Graph, pi: &Permutation) -> AtsOutcome {
        let out = approximate_token_swapping(graph, pi);
        assert!(!out.fallback_used, "fallback triggered unexpectedly");
        let sched = serial_schedule(&out.serial_swaps);
        assert!(sched.realizes(pi), "ATS does not realize π");
        sched.validate_on(graph).unwrap();
        out
    }

    #[test]
    fn identity_needs_no_swaps() {
        let g = Grid::new(3, 3).to_graph();
        let out = check_ats(&g, &Permutation::identity(9));
        assert_eq!(out.num_swaps(), 0);
    }

    #[test]
    fn single_transposition_on_edge() {
        let g = Path::new(4).to_graph();
        let pi = Permutation::from_vec(vec![1, 0, 2, 3]).unwrap();
        let out = check_ats(&g, &pi);
        assert_eq!(
            out.num_swaps(),
            1,
            "adjacent transposition is one happy swap"
        );
    }

    #[test]
    fn rotation_on_cycle_graph() {
        let c = Cycle::new(6);
        let g = c.to_graph();
        let map: Vec<usize> = (0..6).map(|v| (v + 1) % 6).collect();
        let pi = Permutation::from_vec(map).unwrap();
        let out = check_ats(&g, &pi);
        // A cyclic rotation of C6 takes 5 swaps (cycle shift).
        assert_eq!(out.num_swaps(), 5);
    }

    #[test]
    fn routes_random_instances_on_grids() {
        for (m, n) in [(2, 2), (3, 4), (5, 5), (1, 9)] {
            let grid = Grid::new(m, n);
            let g = grid.to_graph();
            for seed in 0..6 {
                let pi = generators::random(grid.len(), seed);
                let out = check_ats(&g, &pi);
                // 4-approx sanity: OPT >= total_distance / 2... actually
                // each swap reduces Φ by at most 2, so swaps >= Φ/2; the
                // 4-approx then gives swaps <= 4·OPT <= ... we verify the
                // weaker certified bound swaps <= 2Φ (OPT <= Φ since
                // moving tokens one-by-one costs Φ... loosely) — in
                // practice the ratio is near 1.
                let phi = metrics::total_distance_graph(&g, &pi);
                assert!(out.num_swaps() >= phi.div_ceil(2));
                assert!(out.num_swaps() <= 2 * phi + grid.len());
            }
        }
    }

    #[test]
    fn routes_on_gridlike_graphs() {
        let g = gridlike::brick_wall(4, 5);
        for seed in 0..4 {
            let pi = generators::random(20, seed);
            check_ats(&g, &pi);
        }
        let (dg, _) = gridlike::grid_with_defects(Grid::new(4, 4), &[5, 10]);
        assert!(dg.is_connected());
        for seed in 0..4 {
            let pi = generators::random(14, seed);
            check_ats(&dg, &pi);
        }
    }

    #[test]
    fn near_optimal_on_tiny_instances() {
        // Exact optimum by BFS over token configurations; ATS must be
        // within factor 4 (it is usually equal on these sizes).
        fn opt_swaps(g: &Graph, pi: &Permutation) -> usize {
            use std::collections::{HashMap, VecDeque};
            let start: Vec<usize> = (0..pi.len()).collect();
            let goal: Vec<usize> = {
                // token v must be at pi(v): at[pi(v)] = v.
                let mut at = vec![0; pi.len()];
                for v in 0..pi.len() {
                    at[pi.apply(v)] = v;
                }
                at
            };
            let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut q = VecDeque::new();
            seen.insert(start.clone(), 0);
            q.push_back(start);
            while let Some(cfg) = q.pop_front() {
                let d = seen[&cfg];
                if cfg == goal {
                    return d;
                }
                for &(u, v) in g.edges() {
                    let mut next = cfg.clone();
                    next.swap(u, v);
                    if !seen.contains_key(&next) {
                        seen.insert(next.clone(), d + 1);
                        q.push_back(next);
                    }
                }
            }
            unreachable!("connected graph must reach the goal");
        }

        let shapes = [Grid::new(2, 2), Grid::new(2, 3), Grid::new(1, 5)];
        for grid in shapes {
            let g = grid.to_graph();
            for seed in 0..5 {
                let pi = generators::random(grid.len(), seed);
                let out = check_ats(&g, &pi);
                let opt = opt_swaps(&g, &pi);
                assert!(
                    out.num_swaps() <= 4 * opt.max(1),
                    "{:?} seed {seed}: ats {} vs opt {opt}",
                    grid,
                    out.num_swaps()
                );
            }
        }
    }

    #[test]
    fn parallelized_schedule_realizes_and_is_shallower() {
        let grid = Grid::new(5, 5);
        let g = grid.to_graph();
        let pi = generators::random(25, 11);
        let out = check_ats(&g, &pi);
        let par = out.parallelized(25);
        assert!(par.realizes(&pi));
        par.validate_on(&g).unwrap();
        assert!(par.depth() <= out.num_swaps());
        assert_eq!(par.size(), out.num_swaps());
        assert!(par.depth() >= metrics::max_displacement(grid, &pi));
    }

    #[test]
    fn parallel_ats_realizes_and_is_much_shallower() {
        let grid = Grid::new(8, 8);
        let g = grid.to_graph();
        for seed in 0..5 {
            let pi = generators::random(64, seed);
            let par = parallel_token_swapping(&g, &pi);
            assert!(par.realizes(&pi), "seed {seed}");
            par.validate_on(&g).unwrap();
            assert!(par.depth() >= metrics::max_displacement(grid, &pi));
            // Shallower than (or equal to) the post-hoc serialized form.
            // The win is bounded: Miltzow-style cycle rotation has an
            // inherent critical path proportional to the walk-cycle
            // length, which parallel chain extraction cannot beat (see
            // EXPERIMENTS.md).
            let serial = approximate_token_swapping(&g, &pi).parallelized(64);
            assert!(
                par.depth() <= serial.depth(),
                "seed {seed}: parallel {} vs serialized {}",
                par.depth(),
                serial.depth()
            );
        }
    }

    #[test]
    fn parallel_ats_on_identity_and_single_swap() {
        let g = Grid::new(3, 3).to_graph();
        assert_eq!(
            parallel_token_swapping(&g, &Permutation::identity(9)).depth(),
            0
        );
        let pi = Permutation::from_vec(vec![1, 0, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let s = parallel_token_swapping(&g, &pi);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.size(), 1);
    }

    #[test]
    fn parallel_ats_block_local_is_shallow() {
        // Disjoint local blocks: happy swaps across blocks parallelize, so
        // depth stays near the block diameter, independent of grid size.
        let grid = Grid::new(12, 12);
        let g = grid.to_graph();
        for seed in 0..3 {
            let pi = generators::block_local(grid, 3, 3, seed);
            let s = parallel_token_swapping(&g, &pi);
            assert!(s.realizes(&pi));
            assert!(s.depth() <= 16, "seed {seed}: depth {}", s.depth());
        }
    }

    #[test]
    fn parallel_ats_works_on_gridlike_graphs() {
        for g in [gridlike::brick_wall(4, 5), gridlike::heavy_hex(3, 9)] {
            for seed in 0..3 {
                let pi = generators::random(g.len(), seed);
                let s = parallel_token_swapping(&g, &pi);
                assert!(s.realizes(&pi));
                s.validate_on(&g).unwrap();
            }
        }
    }

    #[test]
    fn tree_route_realizes_on_many_graphs() {
        let graphs: Vec<Graph> = vec![
            Path::new(7).to_graph(),
            Cycle::new(8).to_graph(),
            Grid::new(4, 4).to_graph(),
            gridlike::brick_wall(3, 6),
            Graph::complete(6),
        ];
        for g in &graphs {
            for seed in 0..4 {
                let pi = generators::random(g.len(), seed);
                let swaps = tree_route(g, &pi);
                let sched = serial_schedule(&swaps);
                assert!(sched.realizes(&pi));
                sched.validate_on(g).unwrap();
                assert!(swaps.len() <= g.len() * g.len());
            }
        }
    }

    #[test]
    fn tree_route_empty_and_singleton() {
        assert!(tree_route(&Graph::edgeless(0), &Permutation::identity(0)).is_empty());
        assert!(tree_route(&Graph::edgeless(1), &Permutation::identity(1)).is_empty());
    }

    #[test]
    fn ats_beats_tree_route_on_swap_count() {
        let grid = Grid::new(5, 5);
        let g = grid.to_graph();
        let mut ats_total = 0usize;
        let mut tree_total = 0usize;
        for seed in 0..6 {
            let pi = generators::random(25, seed);
            ats_total += check_ats(&g, &pi).num_swaps();
            tree_total += tree_route(&g, &pi).len();
        }
        assert!(
            ats_total < tree_total,
            "ATS ({ats_total}) should beat tree ({tree_total})"
        );
    }
}
