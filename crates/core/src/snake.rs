//! Serpentine (boustrophedon) routing: emulate a path on the grid.
//!
//! Every grid has a Hamiltonian path snaking row by row (left-to-right,
//! then right-to-left). Routing a permutation with odd–even transposition
//! along that path is the classic "1-D emulation" baseline: trivially
//! correct, depth up to `m·n` — it makes the case for genuinely
//! two-dimensional routing, where the 3-phase scheme needs only
//! `O(m + n)` layers. Included as a baseline and as a fallback that works
//! on any grid without matching machinery.

use crate::line::route_line_best;
use crate::schedule::{RoutingSchedule, SwapLayer};
use qroute_perm::Permutation;
use qroute_topology::Grid;

/// The serpentine Hamiltonian path of the grid: row 0 left-to-right,
/// row 1 right-to-left, and so on. Consecutive entries are grid-adjacent.
pub fn serpentine_order(grid: Grid) -> Vec<usize> {
    let mut order = Vec::with_capacity(grid.len());
    for i in 0..grid.rows() {
        if i % 2 == 0 {
            for j in 0..grid.cols() {
                order.push(grid.index(i, j));
            }
        } else {
            for j in (0..grid.cols()).rev() {
                order.push(grid.index(i, j));
            }
        }
    }
    order
}

/// Route `π` by odd–even transposition along the serpentine path.
pub fn snake_route(grid: Grid, pi: &Permutation) -> RoutingSchedule {
    assert_eq!(grid.len(), pi.len(), "permutation size must match grid");
    let order = serpentine_order(grid);
    // Position of each vertex along the snake.
    let mut pos = vec![0usize; grid.len()];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    // Token at snake position p must reach position pos[π(order[p])].
    let targets: Vec<usize> = order.iter().map(|&v| pos[pi.apply(v)]).collect();
    let rounds = route_line_best(&targets);
    let layers = rounds
        .into_iter()
        .map(|round| {
            SwapLayer::new(
                round
                    .into_iter()
                    .map(|(a, b)| (order[a], order[b]))
                    .collect(),
            )
        })
        .collect();
    RoutingSchedule::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qroute_perm::generators;

    #[test]
    fn serpentine_is_hamiltonian() {
        for (m, n) in [(1, 1), (1, 5), (5, 1), (3, 4), (4, 3)] {
            let grid = Grid::new(m, n);
            let order = serpentine_order(grid);
            assert_eq!(order.len(), grid.len());
            let mut seen = vec![false; grid.len()];
            for &v in &order {
                assert!(!seen[v]);
                seen[v] = true;
            }
            for w in order.windows(2) {
                assert_eq!(grid.dist(w[0], w[1]), 1, "snake broken at {w:?}");
            }
        }
    }

    #[test]
    fn snake_routes_random_permutations() {
        for (m, n) in [(1, 6), (4, 4), (3, 5)] {
            let grid = Grid::new(m, n);
            let graph = grid.to_graph();
            for seed in 0..4 {
                let pi = generators::random(grid.len(), seed);
                let s = snake_route(grid, &pi);
                assert!(s.realizes(&pi), "{m}x{n} seed {seed}");
                s.validate_on(&graph).unwrap();
                assert!(s.depth() <= grid.len());
            }
        }
    }

    #[test]
    fn snake_identity_is_free() {
        let grid = Grid::new(4, 4);
        assert_eq!(snake_route(grid, &Permutation::identity(16)).depth(), 0);
    }

    #[test]
    fn snake_is_much_deeper_than_two_dimensional_routing() {
        // The whole point of the paper: 1-D emulation wastes the second
        // dimension. On random permutations the snake should be several
        // times deeper than the 3-phase router.
        use crate::local_grid::local_grid_route;
        let grid = Grid::new(8, 8);
        let mut snake_total = 0usize;
        let mut local_total = 0usize;
        for seed in 0..4 {
            let pi = generators::random(64, seed);
            snake_total += snake_route(grid, &pi).depth();
            local_total += local_grid_route(grid, &pi).depth();
        }
        assert!(
            snake_total > 2 * local_total,
            "snake {snake_total} vs 3-phase {local_total}"
        );
    }
}
