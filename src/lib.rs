//! # qroute
//!
//! Umbrella crate for the **locality-aware qubit routing** workspace — a
//! from-scratch Rust reproduction of *"Locality-aware Qubit Routing for the
//! Grid Architecture"* (Banerjee, Liang, Tohid; IPPS 2022).
//!
//! Re-exports the public API of every subsystem:
//!
//! * [`topology`] — coupling graphs (grids, paths, cycles, Cartesian
//!   products, grid-like lattices);
//! * [`perm`] — permutations, partial permutations, workload generators,
//!   locality metrics;
//! * [`matching`] — bipartite matching machinery (Hopcroft–Karp, regular
//!   multigraph decomposition, MCBBM bottleneck assignment);
//! * [`routing`] — the routers: the paper's locality-aware algorithm, the
//!   naive 3-phase baseline, approximate token swapping, hybrids;
//! * [`circuit`] — quantum circuit IR and workload builders;
//! * [`sim`] — statevector and permutation simulators for verification;
//! * [`transpiler`] — the full mapping+routing transpiler built on the
//!   routers;
//! * [`service`] — the batched, cached, multi-worker routing engine with
//!   the JSONL job API (`repro batch`).
//!
//! ## Quickstart
//!
//! ```
//! use qroute::prelude::*;
//!
//! // An 8x8 qubit grid and a random permutation of its 64 qubits.
//! let grid = Grid::new(8, 8);
//! let pi = qroute::perm::generators::random(grid.len(), 42);
//!
//! // Route with the paper's locality-aware algorithm...
//! let schedule = RouterKind::locality_aware().route(grid, &pi);
//! assert!(schedule.realizes(&pi));
//!
//! // ...and compare against approximate token swapping.
//! let ats = RouterKind::Ats.route(grid, &pi);
//! println!("local depth = {}, ats depth = {}", schedule.depth(), ats.depth());
//! ```

#![forbid(unsafe_code)]

pub use qroute_circuit as circuit;
pub use qroute_core as routing;
pub use qroute_matching as matching;
pub use qroute_perm as perm;
pub use qroute_service as service;
pub use qroute_sim as sim;
pub use qroute_topology as topology;
pub use qroute_transpiler as transpiler;

/// The most commonly used items in one import.
pub mod prelude {
    pub use qroute_circuit::{Circuit, Gate};
    pub use qroute_core::{GridRouter, LocalRouteOptions, RouterKind, RoutingSchedule, SwapLayer};
    pub use qroute_perm::{PartialPermutation, Permutation};
    pub use qroute_topology::{Graph, Grid};
    pub use qroute_transpiler::{TranspileOptions, Transpiler};
}
