//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Real serde separates data model from format; this shim collapses both
//! into a single JSON-writing trait because the workspace only ever
//! serializes flat result rows to JSON (`serde_json::to_string_pretty`).
//! The `#[derive(Serialize)]` macro comes from the sibling `serde_derive`
//! shim and targets named-field structs of primitives, strings, vectors,
//! options and nested `Serialize` types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::Serialize;

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);
}

macro_rules! impl_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` round-trips floats (shortest representation).
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(3usize), "3");
        assert_eq!(json(-4i64), "-4");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json(vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u32>::None), "null");
        assert_eq!(json(Some(7u32)), "7");
    }
}
