//! Offline shim for the subset of the `rand 0.8` API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, deterministic implementation: [`rngs::StdRng`] is a
//! xoshiro256** generator seeded through SplitMix64, [`Rng::gen_range`]
//! uses Lemire-style rejection-free reduction (biased only below 2^-64,
//! irrelevant for test workloads), and [`seq::SliceRandom::shuffle`] is a
//! Fisher–Yates shuffle.
//!
//! Streams are *not* bit-compatible with upstream `rand`; everything in the
//! workspace treats seeds as opaque reproducibility handles, never as
//! golden-value inputs, so only determinism matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random bits plus the derived sampling helpers.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        // 53 uniform mantissa bits, the same resolution as upstream.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Construction of an [`Rng`] from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Wrapping subtraction yields the correct span width even for
                // signed ranges straddling zero (e.g. -5..=5).
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for 0..=u64::MAX-style ranges.
                    return rng.next_u64() as $t;
                }
                start + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Map 64 random bits into `0..span` (Lemire multiply-shift reduction).
fn reduce(bits: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((bits as u128 * span as u128) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Pick a uniform random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
