//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the serde shim's JSON
//! writer. The pretty printer re-formats the compact encoding, which is
//! correct because the writer always produces valid JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization error. The shim writer is infallible, so this is only a
/// type-compatibility placeholder; no API in this crate ever returns it.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent a compact JSON document (2 spaces, serde_json style).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_formats_arrays_of_numbers() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn pretty_leaves_strings_intact() {
        let v = vec!["a{b".to_string(), "c,d".to_string()];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a{b\""));
        assert!(pretty.contains("\"c,d\""));
    }

    #[test]
    fn empty_array_stays_inline() {
        let v: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
