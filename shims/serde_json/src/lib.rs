//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the serde shim's JSON
//! writer (the pretty printer re-formats the compact encoding, which is
//! correct because the writer always produces valid JSON), plus a small
//! document model — [`Value`] and [`from_str`] — for reading JSON files
//! back (e.g. committed benchmark baselines). Object keys preserve
//! insertion order, matching serde_json's `preserve_order` feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization or parse error carrying a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document.
///
/// Objects are stored as insertion-ordered `(key, value)` vectors rather
/// than maps: baseline files are small, lookups are linear, and the
/// original key order survives a parse→inspect round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, as in JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object. `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly integral.
    /// `u64::MAX as f64` rounds up to 2^64 (not representable), so the
    /// bound is strict.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl serde::Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Number(x) => x.write_json(out),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(key, out);
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts (matches real
/// serde_json's default recursion limit) — deeper input gets a parse
/// error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

/// Parse a JSON document into a [`Value`]. Rejects trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { input, bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.parse_array_inner()?;
        self.depth -= 1;
        Ok(v)
    }

    fn parse_array_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.parse_object_inner()?;
        self.depth -= 1;
        Ok(v)
    }

    fn parse_object_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogates (emitted by real serde_json for
                            // astral chars) are not produced by our writer;
                            // map lone ones to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error(format!("bad escape \\{}", esc as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` always sits on a
                    // char boundary, so the O(1) boundary-checked slice
                    // avoids revalidating the rest of the document.
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent a compact JSON document (2 spaces, serde_json style).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_formats_arrays_of_numbers() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn pretty_leaves_strings_intact() {
        let v = vec!["a{b".to_string(), "c,d".to_string()];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a{b\""));
        assert!(pretty.contains("\"c,d\""));
    }

    #[test]
    fn empty_array_stays_inline() {
        let v: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" -1.5e2 ").unwrap(), Value::Number(-150.0));
        assert_eq!(
            from_str("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::String("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_documents_preserving_key_order() {
        let v = from_str(r#"{"z": [1, 2, {"k": null}], "a": {"b": false}}"#).unwrap();
        match &v {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "z");
                assert_eq!(entries[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(v.get("z").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = from_str("{\"n\": 3, \"f\": 2.5, \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        // 2^64 is not representable as u64; the saturating cast must not
        // silently hand back u64::MAX.
        assert_eq!(from_str("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"open"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(200_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Exactly MAX_DEPTH levels still parse.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(from_str(&too_deep).is_err());
    }

    #[test]
    fn round_trips_writer_output() {
        let written = to_string_pretty(&vec![1.5f64, 2.0, 3.25]).unwrap();
        let parsed = from_str(&written).unwrap();
        assert_eq!(
            parsed,
            Value::Array(vec![
                Value::Number(1.5),
                Value::Number(2.0),
                Value::Number(3.25)
            ])
        );
    }
}
