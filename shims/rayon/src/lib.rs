//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! There is no crates.io access in the build environment, so "parallel"
//! iterators degrade to ordinary sequential iterators with the same method
//! chains (`into_par_iter().map(...).collect()`). Callers must not rely on
//! actual parallelism — only on identical results, which sequential
//! execution trivially provides. Swapping in real rayon later is a
//! one-line `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// Types convertible into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Convert into the iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Types whose references yield a "parallel" (here: sequential) iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: 'a;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate by reference.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_by_ref() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
