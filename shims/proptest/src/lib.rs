//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! A tiny strategy framework with deterministic sampling and **no
//! shrinking**: each test runs `Config::cases` independently-seeded cases
//! and reports the first failing case's message. Seeds derive from the
//! case index alone, so failures reproduce exactly across runs and
//! machines — a deliberate trade: upstream proptest explores new seeds
//! per run and shrinks failures, this shim favors CI determinism.
//!
//! Supported surface (all of it exercised by `tests/properties.rs`):
//! integer-range strategies, [`strategy::Just`], tuples up to arity 4,
//! `prop_flat_map` / `prop_map` / `prop_shuffle`, [`collection::vec`],
//! the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Test-runner configuration types.
pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length sampled
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: elements from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.below(self.size.end - self.size.start) + self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub fn run_cases<F>(config: test_runner::Config, mut case: F)
where
    F: FnMut(&mut strategy::TestRng) -> Result<(), String>,
{
    for index in 0..config.cases {
        let mut rng = strategy::TestRng::for_case(index as u64);
        if let Err(msg) = case(&mut rng) {
            panic!("proptest case {index}/{} failed: {msg}", config.cases);
        }
    }
}

/// Define deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     // `#[test]` goes here in real test modules.
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` for proptest bodies: fails the current case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            ));
        }
    }};
}
