//! The strategy trait, primitive strategies and combinators.

/// Deterministic per-case random source (xoshiro256** seeded by SplitMix64
/// from the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The generator for case number `case` (stable across runs).
    pub fn for_case(case: u64) -> Self {
        let mut x = case.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x6a09e667f3bcc908;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map each sampled value through a strategy-producing function and
    /// sample from the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Map each sampled value through a plain function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Uniformly shuffle the sampled value (a `Vec`).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { base: self }
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<B> {
    base: B,
}

impl<B, T> Strategy for Shuffle<B>
where
    B: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.base.sample(rng);
        rng.shuffle(&mut v);
        v
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + (((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=6).sample(&mut rng);
            assert!((1..=6).contains(&w));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = TestRng::for_case(1);
        let s = Just((0..30).collect::<Vec<usize>>()).prop_shuffle();
        let mut v = s.sample(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_composes() {
        let mut rng = TestRng::for_case(2);
        let s = (2usize..5).prop_flat_map(|n| Just(vec![n; n]));
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1000).prop_map(|x| x * 2);
        let a: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
