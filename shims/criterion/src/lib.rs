//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Compiles the same bench sources (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_with_input`, `Bencher::iter`) and runs a
//! simple timing loop: per benchmark, one warm-up call then `sample_size`
//! timed batches, reporting the per-iteration mean and min to stdout. No
//! statistics, plots, or baselines — those need the real crate; swap it
//! in via `Cargo.toml` when a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput annotation (recorded but not reported by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim does a single warm-up call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times `sample_size` calls.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the group throughput (ignored by the shim reporter).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: self.sample_size };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Run a benchmark with no prepared input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: self.sample_size };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (reports are emitted eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.samples.is_empty() {
            eprintln!("  {}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
        let min = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        eprintln!(
            "  {}/{}: mean {:>12} min {:>12} ({} samples)",
            self.name,
            id.id,
            fmt_ns(mean),
            fmt_ns(min),
            bencher.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration, one entry per timed sample.
    samples: Vec<f64>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Call `routine` repeatedly, timing each sample batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up / first-touch
        for _ in 0..self.iters_per_sample {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }
}
