//! `#[derive(Serialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment has no crates.io access). Supports exactly what the
//! workspace needs: non-generic structs with named fields, where every
//! field type implements the shim's `serde::Serialize`. Anything else is
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` (JSON writer) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&trees.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }

    match trees.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        _ => return Err("Serialize shim derive supports only structs".into()),
    }

    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct name".into()),
    };
    i += 1;

    let fields_group = match trees.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("Serialize shim derive does not support generics".into())
        }
        _ => return Err("Serialize shim derive supports only named-field structs".into()),
    };

    let fields = parse_field_names(fields_group.stream())?;
    if fields.is_empty() {
        return Err("Serialize shim derive needs at least one field".into());
    }

    let mut body = String::new();
    for (k, field) in fields.iter().enumerate() {
        if k > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::write_json_string({field:?}, out);\n\
             out.push(':');\n\
             ::serde::Serialize::write_json(&self.{field}, out);\n"
        ));
    }

    let impl_src = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n\
                 out.push('{{');\n\
                 {body}\
                 out.push('}}');\n\
             }}\n\
         }}"
    );
    impl_src
        .parse()
        .map_err(|e| format!("shim derive produced invalid Rust: {e:?}"))
}

/// Extract field names from the brace group of a named-field struct.
fn parse_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Skip field attributes (doc comments arrive as `#[doc = ...]`).
        while matches!(&trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility.
        if matches!(&trees.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&trees.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match trees.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => return Err(format!("unexpected token in struct fields: {other:?}")),
        };
        i += 1;
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma. Generic argument
        // lists contain commas, so track `<`/`>` depth; shift operators
        // cannot appear in types, so each `>` closes one level.
        let mut angle_depth = 0usize;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}
