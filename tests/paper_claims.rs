//! Small-scale checks of the qualitative claims of §V of the paper.
//! The full sweeps live in the `repro` binary; these are the fast,
//! deterministic versions that gate CI.

use qroute::perm::{generators, metrics};
use qroute::prelude::*;

/// §V: "Our locality-aware algorithm can always be made to produce a
/// routing scheme with a smaller or equal depth as opposed to the naive
/// grid routing algorithm" — the hybrid clamp.
#[test]
fn hybrid_no_deeper_than_naive_or_local() {
    let grid = Grid::new(8, 8);
    for seed in 0..6 {
        for pi in [
            generators::random(64, seed),
            generators::block_local(grid, 4, 4, seed),
            generators::overlapping_blocks(grid, 4, 4, 2, 2, seed),
        ] {
            let h = RouterKind::hybrid().route(grid, &pi).depth();
            let l = RouterKind::locality_aware().route(grid, &pi).depth();
            let n = RouterKind::naive().route(grid, &pi).depth();
            assert!(h <= l.min(n), "seed {seed}: h={h} l={l} n={n}");
        }
    }
}

/// Fig. 4, green vs brown: on random permutations the locality-aware
/// router produces shallower schedules than ATS.
#[test]
fn local_beats_ats_on_random_permutations() {
    let grid = Grid::new(10, 10);
    let mut local_total = 0usize;
    let mut ats_total = 0usize;
    for seed in 0..5 {
        let pi = generators::random(100, seed);
        local_total += RouterKind::locality_aware().route(grid, &pi).depth();
        ats_total += RouterKind::Ats.route(grid, &pi).depth();
    }
    assert!(
        local_total < ats_total,
        "locality-aware ({local_total}) should beat ATS ({ats_total}) on random"
    );
}

/// Fig. 4, blue vs red: on disjoint block-local permutations the two are
/// comparable — we assert within a factor of 2.5 (and both near the
/// lower bound).
#[test]
fn local_and_ats_comparable_on_disjoint_blocks() {
    let grid = Grid::new(12, 12);
    let mut local_total = 0usize;
    let mut ats_total = 0usize;
    for seed in 0..5 {
        let pi = generators::block_local(grid, 4, 4, seed);
        local_total += RouterKind::locality_aware().route(grid, &pi).depth();
        ats_total += RouterKind::Ats.route(grid, &pi).depth();
    }
    let ratio = ats_total as f64 / local_total as f64;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "block-local depths diverged: local {local_total}, ats {ats_total}"
    );
}

/// §V text: skinny orthogonal cycles are not a bottleneck for ATS — the
/// two routers end up close (ATS within ~1.5x of local and vice versa).
#[test]
fn skinny_cycles_keep_ats_competitive() {
    let grid = Grid::new(12, 12);
    let mut local_total = 0usize;
    let mut ats_total = 0usize;
    for seed in 0..5 {
        let pi = generators::skinny_cycles(grid, seed);
        local_total += RouterKind::locality_aware().route(grid, &pi).depth();
        ats_total += RouterKind::Ats.route(grid, &pi).depth();
    }
    let ratio = ats_total as f64 / local_total as f64;
    assert!(
        (0.5..=1.6).contains(&ratio),
        "skinny-cycle depths diverged: local {local_total}, ats {ats_total}"
    );
}

/// Fig. 4 premise: locality pays. On block-local workloads the
/// locality-aware router must be far below the naive router's typical
/// depth and near the displacement lower bound.
#[test]
fn locality_awareness_exploits_block_locality() {
    let grid = Grid::new(16, 16);
    for seed in 0..3 {
        let pi = generators::block_local(grid, 4, 4, seed);
        let depth = RouterKind::locality_aware().route(grid, &pi).depth();
        let lb = metrics::max_displacement(grid, &pi);
        // Block diameter is 6; the router should stay within a small
        // constant of it, far below the ~3n naive envelope (48).
        assert!(
            depth <= 4 * lb.max(1),
            "seed {seed}: depth {depth} vs lb {lb}"
        );
        assert!(depth <= 20, "seed {seed}: depth {depth} not local");
    }
}

/// Fig. 5 shape: the locality-aware router is substantially faster than
/// ATS at scale. Timing asserts are fragile in CI, so we only require a
/// weak 1.5x margin at a size where the paper shows an order of
/// magnitude.
#[test]
fn local_router_is_faster_than_ats_at_scale() {
    use std::time::Instant;
    let grid = Grid::new(32, 32);
    let pis: Vec<_> = (0..3).map(|s| generators::random(grid.len(), s)).collect();

    // Warm up both once.
    let _ = RouterKind::locality_aware().route(grid, &pis[0]);
    let _ = RouterKind::Ats.route(grid, &pis[0]);

    let t0 = Instant::now();
    for pi in &pis {
        let _ = RouterKind::locality_aware().route(grid, pi);
    }
    let local_time = t0.elapsed();
    let t0 = Instant::now();
    for pi in &pis {
        let _ = RouterKind::Ats.route(grid, pi);
    }
    let ats_time = t0.elapsed();
    assert!(
        local_time.as_secs_f64() * 1.5 < ats_time.as_secs_f64(),
        "local {local_time:?} not clearly faster than ats {ats_time:?}"
    );
}
