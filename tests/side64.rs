//! Side-64 (4096-qubit) smoke test: the scale the distance-oracle
//! overhaul unlocked. Every `RouterKind` must terminate and realize π on
//! a 64×64 grid — before the overhaul the ATS routers alone would
//! materialize a 64 MiB APSP table per call here.
//!
//! The workload is block-local (the paper's own regime) so the whole
//! sweep stays fast in debug builds; `repro bench --sides 64 --no-time`
//! exercises the uniform-random regime in release.

use qroute::perm::{generators, metrics};
use qroute::prelude::*;
use qroute::routing::grid_route::NaiveOptions;
use qroute::routing::local_grid::LocalRouteOptions;

fn all_router_kinds() -> Vec<RouterKind> {
    vec![
        RouterKind::locality_aware(),
        RouterKind::LocalityAware(LocalRouteOptions::paper()),
        RouterKind::naive(),
        RouterKind::NaiveGrid(NaiveOptions::plain()),
        RouterKind::hybrid(),
        RouterKind::Ats,
        RouterKind::AtsSerial,
        RouterKind::Tree,
        RouterKind::Snake,
    ]
}

#[test]
fn side_64_every_router_kind_terminates_and_realizes() {
    let grid = Grid::new(64, 64);
    let pi = generators::block_local(grid, 4, 4, 1);
    let lower = metrics::max_displacement(grid, &pi);
    for router in all_router_kinds() {
        let schedule = router.route(grid, &pi);
        assert!(
            schedule.realizes(&pi),
            "{} does not realize π at side 64",
            router.name()
        );
        assert!(
            schedule.depth() >= lower,
            "{} beat the displacement lower bound",
            router.name()
        );
    }
}
