//! Workspace smoke test: every router realizes random permutations on a
//! 4x4 grid with schedules whose layers are valid matchings of the
//! coupling graph, across 10 seeds.

use qroute::perm::generators;
use qroute::prelude::*;
use qroute::routing::grid_route::NaiveOptions;
use qroute::routing::local_grid::LocalRouteOptions;

/// One representative of every `RouterKind` variant.
fn all_router_kinds() -> Vec<RouterKind> {
    vec![
        RouterKind::locality_aware(),
        RouterKind::LocalityAware(LocalRouteOptions::paper()),
        RouterKind::naive(),
        RouterKind::NaiveGrid(NaiveOptions::plain()),
        RouterKind::hybrid(),
        RouterKind::Ats,
        RouterKind::AtsSerial,
        RouterKind::Tree,
        RouterKind::Snake,
    ]
}

#[test]
fn every_router_kind_realizes_and_produces_valid_matchings() {
    let grid = Grid::new(4, 4);
    let graph = grid.to_graph();
    for seed in 0..10 {
        let pi = generators::random(grid.len(), seed);
        for router in all_router_kinds() {
            let schedule = router.route(grid, &pi);
            assert!(
                schedule.realizes(&pi),
                "{} does not realize π (seed {seed})",
                router.name()
            );
            schedule.validate_on(&graph).unwrap_or_else(|e| {
                panic!(
                    "{} produced an invalid layer (seed {seed}): {e:?}",
                    router.name()
                )
            });
        }
    }
}

#[test]
fn every_router_kind_handles_identity_and_reversal() {
    let grid = Grid::new(4, 4);
    let graph = grid.to_graph();
    let identity = qroute::perm::Permutation::identity(grid.len());
    let reversal = generators::reversal(grid.len());
    for router in all_router_kinds() {
        for pi in [&identity, &reversal] {
            let schedule = router.route(grid, pi);
            assert!(schedule.realizes(pi), "{} failed", router.name());
            schedule.validate_on(&graph).unwrap();
        }
    }
}
