// A Bell pair, exercising comments, blank lines, shared statement
// lines, and tolerated-but-ignored declarations.
OPENQASM 2.0; // header shares a line with a comment

include "qelib1.inc";

// classical register and barrier are tolerated and ignored
qreg q[2];
creg c[2];

h q[0]; cx q[0],q[1]; // two statements on one line
barrier q;

// trailing comment, then a blank line
