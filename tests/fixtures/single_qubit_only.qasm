OPENQASM 2.0;
include "qelib1.inc";

// a single-qubit-only circuit: no routing surface at all
qreg q[1];

h q[0];
x q[0];
y q[0];
z q[0];
s q[0];
sdg q[0];
t q[0];
tdg q[0];
rx(0.25) q[0];
ry(0.5) q[0];
rz(0.75) q[0];
