OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
// every angle shape the parser accepts
rz(pi/2) q[0];
rx(-pi) q[1];
ry(2*pi) q[2];
rz(pi/4) q[0];
rz(pi*0.25) q[1];
rz(-pi/2) q[2];
rx(0.125) q[0];
