//! Golden round-trip tests for the OpenQASM parser/emitter pair, plus
//! malformed-input error paths.
//!
//! Each checked-in fixture parses to a `Circuit` whose canonical
//! emission is pinned **byte-for-byte** against a committed `.golden`
//! file, and the golden text itself is an emitter fixpoint (parse →
//! emit reproduces it exactly). Any change to gate `Display` forms,
//! float formatting, or statement layout shows up as a golden diff
//! instead of silently re-shaping every QASM file the project emits.

use qroute::circuit::parser::{parse_qasm, QasmError};
use qroute::circuit::qasm::to_qasm;

/// (fixture input, pinned golden emission).
const GOLDENS: &[(&str, &str, &str)] = &[
    (
        "bell_comments",
        include_str!("fixtures/bell_comments.qasm"),
        include_str!("fixtures/bell_comments.golden.qasm"),
    ),
    (
        "single_qubit_only",
        include_str!("fixtures/single_qubit_only.qasm"),
        include_str!("fixtures/single_qubit_only.golden.qasm"),
    ),
    (
        "pi_angles",
        include_str!("fixtures/pi_angles.qasm"),
        include_str!("fixtures/pi_angles.golden.qasm"),
    ),
    (
        "all_gates",
        include_str!("fixtures/all_gates.qasm"),
        include_str!("fixtures/all_gates.golden.qasm"),
    ),
];

#[test]
fn fixtures_emit_their_goldens_byte_for_byte() {
    for (name, input, golden) in GOLDENS {
        let circuit = parse_qasm(input).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            &to_qasm(&circuit),
            golden,
            "{name}: emission drifted from the committed golden"
        );
    }
}

#[test]
fn goldens_are_emitter_fixpoints() {
    for (name, input, golden) in GOLDENS {
        let reparsed = parse_qasm(golden).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            &to_qasm(&reparsed),
            golden,
            "{name}: golden is not a fixpoint of parse→emit"
        );
        // The golden describes the same circuit as the original input.
        assert_eq!(
            reparsed.gates(),
            parse_qasm(input).unwrap().gates(),
            "{name}: golden circuit differs from the fixture circuit"
        );
    }
}

#[test]
fn all_gates_fixture_is_already_canonical() {
    // The all-gate fixture is written in emitter format, so input and
    // golden are the same bytes — pinning the canonical format itself.
    let (_, input, golden) = GOLDENS
        .iter()
        .find(|(name, _, _)| *name == "all_gates")
        .unwrap();
    assert_eq!(input, golden);
}

#[test]
fn malformed_inputs_report_precise_errors() {
    // Unknown gate name.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[2];\nccx q[0],q[1];"),
        Err(QasmError::BadStatement { line: 3, .. })
    ));
    // Unparseable angle.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(pie) q[0];"),
        Err(QasmError::BadStatement { line: 3, .. })
    ));
    // Unclosed angle parenthesis.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(0.5 q[0];"),
        Err(QasmError::BadStatement { line: 3, .. })
    ));
    // Wrong arity: cx with one operand.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0];"),
        Err(QasmError::BadStatement { line: 3, .. })
    ));
    // Malformed qubit operand.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q(0);"),
        Err(QasmError::BadStatement { line: 3, .. })
    ));
    // Malformed register size.
    assert!(matches!(
        parse_qasm("OPENQASM 2.0;\nqreg q[x];\nh q[0];"),
        Err(QasmError::BadStatement { line: 2, .. })
    ));
    // Wrong header version.
    assert_eq!(
        parse_qasm("OPENQASM 3.0;\nqreg q[1];"),
        Err(QasmError::BadHeader)
    );
    // Gate before the header.
    assert_eq!(
        parse_qasm("h q[0];\nOPENQASM 2.0;"),
        Err(QasmError::BadHeader)
    );
    // Empty input.
    assert_eq!(parse_qasm(""), Err(QasmError::BadHeader));
    // Header but no register.
    assert_eq!(parse_qasm("OPENQASM 2.0;\n"), Err(QasmError::MissingQreg));
}
