//! Property-based tests over the whole stack.

use proptest::prelude::*;
use qroute::perm::{metrics, Permutation};
use qroute::prelude::*;
use qroute::routing::line::{route_line, route_line_best, FirstParity};
use qroute::routing::token_swap;
use qroute::topology::{dist, DistanceOracle, GridOracle, LazyBfsOracle};

/// Strategy: a grid shape and a random permutation of its vertices.
fn grid_and_perm() -> impl Strategy<Value = (usize, usize, Vec<usize>)> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(m, n)| {
        let len = m * n;
        (
            Just(m),
            Just(n),
            Just((0..len).collect::<Vec<usize>>()).prop_shuffle(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locality_router_realizes_any_permutation((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let s = RouterKind::locality_aware().route(grid, &pi);
        prop_assert!(s.realizes(&pi));
        prop_assert!(s.validate_on(&grid.to_graph()).is_ok());
        prop_assert!(s.depth() >= metrics::max_displacement(grid, &pi));
        // 3-phase envelope (each phase <= line length, on either
        // orientation thanks to the transpose trick).
        prop_assert!(s.depth() <= 2 * m.max(n) + m + n);
    }

    #[test]
    fn naive_router_realizes_any_permutation((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let s = RouterKind::naive().route(grid, &pi);
        prop_assert!(s.realizes(&pi));
        prop_assert!(s.validate_on(&grid.to_graph()).is_ok());
    }

    #[test]
    fn ats_realizes_any_permutation((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let s = RouterKind::Ats.route(grid, &pi);
        prop_assert!(s.realizes(&pi));
        prop_assert!(s.validate_on(&grid.to_graph()).is_ok());
    }

    #[test]
    fn serial_ats_never_uses_fallback((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let out = token_swap::approximate_token_swapping(&grid.to_graph(), &pi);
        prop_assert!(!out.fallback_used);
        // Serial swap count within the 4-approx envelope of the distance
        // lower bound: opt >= phi/2, so swaps <= 4*opt means
        // swaps <= 2*phi ... plus slack for tiny instances.
        let phi = metrics::total_displacement(grid, &pi);
        prop_assert!(out.num_swaps() <= 2 * phi + 4);
    }

    #[test]
    fn grid_oracle_agrees_with_apsp_on_random_grids((m, n) in (1usize..=10, 1usize..=10)) {
        // Grids up to n = 100 vertices: the closed-form Manhattan oracle
        // must agree pairwise with the test-only BFS all-pairs table.
        let grid = Grid::new(m, n);
        let graph = grid.to_graph();
        let oracle = GridOracle::new(grid);
        let apsp = dist::all_pairs(&graph);
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                prop_assert_eq!(oracle.dist(u, v), duv);
            }
        }
    }

    #[test]
    fn lazy_bfs_oracle_agrees_with_apsp_on_random_connected_graphs(
        (n, seed) in (2usize..=100, 0u64..1 << 32)
    ) {
        // Random connected graph: a random spanning tree (vertex i hangs
        // off a random j < i) plus ~n/2 random extra edges.
        let mut state = seed ^ 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut edges: Vec<(usize, usize)> = (1..n)
            .map(|i| (i, (next() % i as u64) as usize))
            .collect();
        for _ in 0..n / 2 {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                edges.push((u, v));
            }
        }
        let graph = Graph::from_edges(n, edges).unwrap();
        prop_assert!(graph.is_connected());
        let oracle = LazyBfsOracle::new(&graph);
        let apsp = dist::all_pairs(&graph);
        for (u, row) in apsp.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                prop_assert_eq!(oracle.dist(u, v), duv);
            }
        }
    }

    #[test]
    fn hybrid_clamp_always_holds((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let h = RouterKind::hybrid().route(grid, &pi).depth();
        let l = RouterKind::locality_aware().route(grid, &pi).depth();
        let nv = RouterKind::naive().route(grid, &pi).depth();
        prop_assert!(h <= l.min(nv));
    }

    #[test]
    fn compaction_preserves_realized_permutation((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let s = RouterKind::Tree.route(grid, &pi);
        let c = s.compact(grid.len());
        prop_assert!(c.depth() <= s.depth());
        prop_assert_eq!(
            s.realized_permutation(grid.len()),
            c.realized_permutation(grid.len())
        );
    }

    #[test]
    fn odd_even_line_router_sorts_any_permutation(targets in proptest::collection::vec(0usize..1, 0..1).prop_flat_map(|_| (0usize..9).prop_flat_map(|l| Just((0..l).collect::<Vec<usize>>()).prop_shuffle()))) {
        for first in [FirstParity::Even, FirstParity::Odd] {
            let rounds = route_line(&targets, first);
            prop_assert!(rounds.len() <= targets.len());
            // Verify realization.
            let l = targets.len();
            let mut at: Vec<usize> = (0..l).collect();
            for round in &rounds {
                for &(a, b) in round {
                    at.swap(a, b);
                }
            }
            for (pos, &tok) in at.iter().enumerate() {
                prop_assert_eq!(targets[tok], pos);
            }
        }
        prop_assert!(route_line_best(&targets).len() <= targets.len());
    }

    #[test]
    fn permutation_algebra(map in Just((0..20usize).collect::<Vec<usize>>()).prop_shuffle()) {
        let p = Permutation::from_vec(map).unwrap();
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
        let cycles = p.cycles(false);
        let rebuilt = Permutation::from_cycles(20, &cycles);
        prop_assert_eq!(rebuilt, p.clone());
        // Support = sum of non-trivial cycle lengths.
        let support: usize = cycles.iter().map(Vec::len).sum();
        prop_assert_eq!(support, p.support_size());
    }

    #[test]
    fn schedule_size_counts_swaps((m, n, map) in grid_and_perm()) {
        let grid = Grid::new(m, n);
        let pi = Permutation::from_vec(map).unwrap();
        let s = RouterKind::locality_aware().route(grid, &pi);
        let counted: usize = s.layers.iter().map(|l| l.swaps.len()).sum();
        prop_assert_eq!(s.size(), counted);
        prop_assert_eq!(s.depth(), s.layers.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn transpiler_output_always_feasible(seed in 0u64..1000, gates in 5usize..30) {
        let grid = Grid::new(3, 3);
        let logical = qroute::circuit::builders::random_two_qubit_circuit(9, gates, seed);
        let t = Transpiler::new(grid, TranspileOptions::default());
        let res = t.run(&logical);
        prop_assert!(res.physical.is_feasible(|a, b| grid.dist(a, b) == 1));
        prop_assert_eq!(res.physical.size(), logical.size() + res.swap_count);
    }
}
