//! Cross-crate integration tests: topology → perm → routing → circuit →
//! sim pipelines.

use qroute::circuit::{builders, Gate};
use qroute::perm::{generators, metrics, Permutation};
use qroute::prelude::*;
use qroute::routing::product_route::{product_route, CycleFactor, PathFactor, ProductRouteOptions};
use qroute::sim::{equiv, permsim};
use qroute::topology::{Cycle, Path, Product};
use qroute::transpiler::InitialLayout;

/// Turn a routing schedule into a SWAP circuit on `n` wires.
fn schedule_to_circuit(n: usize, schedule: &RoutingSchedule) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in &schedule.layers {
        for &(u, v) in &layer.swaps {
            c.push(Gate::Swap(u, v));
        }
    }
    c
}

#[test]
fn routing_schedule_matches_permutation_tracker() {
    // The schedule's claimed permutation must agree with the classical
    // SWAP tracker from the sim crate.
    let grid = Grid::new(4, 4);
    for seed in 0..5 {
        let pi = generators::random(16, seed);
        let schedule = RouterKind::locality_aware().route(grid, &pi);
        let circuit = schedule_to_circuit(16, &schedule);
        let tracked = permsim::track_permutation(&circuit).unwrap();
        for (v, &tok) in tracked.iter().enumerate() {
            assert_eq!(tok, pi.apply(v), "token {v} seed {seed}");
        }
    }
}

#[test]
fn routing_schedule_statevector_equivalence() {
    // A routed SWAP network, run on a statevector, must equal relabeling
    // the qubits by π.
    let grid = Grid::new(2, 3);
    let pi = generators::random(6, 3);
    let schedule = RouterKind::hybrid().route(grid, &pi);
    let circuit = schedule_to_circuit(6, &schedule);
    let map: Vec<usize> = (0..6).map(|v| pi.apply(v)).collect();
    for seed in 0..3 {
        let input = qroute::sim::State::random(6, seed);
        let routed = qroute::sim::run(&circuit, input.clone());
        let relabeled = input.relabel_qubits(&map);
        assert!(routed.fidelity(&relabeled) > 1.0 - 1e-9, "seed {seed}");
    }
}

#[test]
fn transpiled_qft_is_statevector_equivalent_for_every_router() {
    let grid = Grid::new(2, 3);
    let logical = builders::qft(6);
    for router in [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::hybrid(),
        RouterKind::Ats,
        RouterKind::AtsSerial,
        RouterKind::Tree,
    ] {
        let t = Transpiler::new(
            grid,
            TranspileOptions { router, initial_layout: InitialLayout::Identity },
        );
        let res = t.run(&logical);
        assert!(res.physical.is_feasible(|a, b| grid.dist(a, b) == 1));
        assert!(
            equiv::transpiled_equivalent(
                &logical,
                &res.physical,
                &res.initial_layout,
                &res.final_layout
            ),
            "router produced an inequivalent transpilation"
        );
    }
}

#[test]
fn transpiled_trotter_with_random_layout() {
    let grid = Grid::new(3, 3);
    let logical = builders::trotter_diagonal_step(3, 3, 0.29, 1);
    let t = Transpiler::new(
        grid,
        TranspileOptions {
            router: RouterKind::locality_aware(),
            initial_layout: InitialLayout::Random(13),
        },
    );
    let res = t.run(&logical);
    assert!(equiv::transpiled_equivalent(
        &logical,
        &res.physical,
        &res.initial_layout,
        &res.final_layout
    ));
}

#[test]
fn decomposed_swaps_stay_equivalent_and_feasible() {
    let grid = Grid::new(2, 3);
    let logical = builders::random_two_qubit_circuit(6, 15, 4);
    let t = Transpiler::new(grid, TranspileOptions::default());
    let res = t.run(&logical);
    let decomposed = res.physical.decompose_swaps();
    assert!(decomposed.is_feasible(|a, b| grid.dist(a, b) == 1));
    assert!(equiv::circuits_equivalent(&res.physical, &decomposed));
}

#[test]
fn product_route_agrees_with_grid_router_on_path_products() {
    let (m, n) = (4, 4);
    let product = Product::new(Path::new(m).to_graph(), Path::new(n).to_graph());
    let grid = Grid::new(m, n);
    for seed in 0..3 {
        let pi = generators::random(m * n, seed);
        let via_product = product_route(
            &product,
            &PathFactor(Path::new(m)),
            &PathFactor(Path::new(n)),
            &pi,
            &ProductRouteOptions::default(),
        );
        let via_grid = RouterKind::locality_aware().route(grid, &pi);
        assert!(via_product.realizes(&pi));
        assert!(via_grid.realizes(&pi));
        // Same algorithm family: depths within the 3-phase envelope.
        assert!(via_product.depth() <= 3 * m.max(n));
        assert!(via_grid.depth() <= 3 * m.max(n));
    }
}

#[test]
fn torus_routing_beats_grid_lower_bound_consistency() {
    let c1 = Cycle::new(5);
    let c2 = Cycle::new(5);
    let torus = Product::new(c1.to_graph(), c2.to_graph());
    let graph = torus.to_graph();
    let pi = generators::random(25, 11);
    let s = product_route(
        &torus,
        &CycleFactor(c1),
        &CycleFactor(c2),
        &pi,
        &ProductRouteOptions::default(),
    );
    assert!(s.realizes(&pi));
    s.validate_on(&graph).unwrap();
    assert!(s.depth() >= metrics::depth_lower_bound_graph(&graph, &pi));
}

#[test]
fn qasm_emission_of_transpiled_circuit_parses_structurally() {
    let grid = Grid::new(2, 2);
    let t = Transpiler::new(grid, TranspileOptions::default());
    let res = t.run(&builders::ghz(4));
    let qasm = qroute::circuit::qasm::to_qasm(&res.physical);
    assert!(qasm.starts_with("OPENQASM 2.0;"));
    assert!(qasm.contains("qreg q[4];"));
    // Every gate line ends with a semicolon.
    for line in qasm.lines().skip(3) {
        assert!(line.ends_with(';'), "bad line: {line}");
    }
}

#[test]
fn partial_permutation_to_routing_pipeline() {
    // Pin two tokens, complete locally, route, and verify only the pinned
    // tokens' destinations are constrained.
    let grid = Grid::new(4, 4);
    let mut pp = PartialPermutation::new(16);
    pp.pin(0, 15).unwrap();
    pp.pin(15, 0).unwrap();
    let pi = pp.complete(&qroute::perm::partial::Completion::NearestFree(grid));
    assert_eq!(pi.apply(0), 15);
    assert_eq!(pi.apply(15), 0);
    let s = RouterKind::locality_aware().route(grid, &pi);
    assert!(s.realizes(&pi));
    assert!(s.depth() >= 6); // corner-to-corner distance
}

#[test]
fn identity_permutation_costs_nothing_everywhere() {
    let grid = Grid::new(5, 5);
    let pi = Permutation::identity(25);
    for router in [
        RouterKind::locality_aware(),
        RouterKind::naive(),
        RouterKind::Ats,
    ] {
        assert_eq!(router.route(grid, &pi).depth(), 0);
    }
}
