//! Property tests of transpile correctness: random logical circuits
//! (≤ 10 qubits, ≤ 40 gates) × every `RouterKind` × every
//! `InitialLayout` variant must produce grid-feasible physical circuits
//! that are statevector-equivalent to the logical circuit modulo the
//! reported initial/final layouts.
//!
//! Equivalence runs through the *embedded* checker
//! ([`qroute::sim::equiv::transpiled_equivalent_embedded`]), which costs
//! `O(2^n_logical)` regardless of grid size; on grids small enough to
//! simulate fully, the padded full-statevector checker must agree —
//! a differential test of the verification harness itself.
//!
//! Case counts are deliberately small: each case exercises
//! 7 routers × 3 layouts = 21 transpile+verify cycles, so the suite
//! stays inside the tier-1 wall-time budget (see CI).

use proptest::prelude::*;
use qroute::circuit::builders;
use qroute::prelude::*;
use qroute::sim::equiv::{transpiled_equivalent, transpiled_equivalent_embedded};
use qroute::transpiler::InitialLayout;

fn layout_variants(grid_len: usize, seed: u64) -> Vec<InitialLayout> {
    vec![
        InitialLayout::Identity,
        InitialLayout::Random(seed),
        InitialLayout::Custom((0..grid_len).rev().collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_router_and_layout_preserves_semantics(
        (rows, cols, gates, seed) in (2usize..=3, 2usize..=4, 1usize..=40, 0u64..1 << 20)
    ) {
        let grid = Grid::new(rows, cols);
        let n_logical = grid.len().clamp(2, 10);
        let logical = builders::random_two_qubit_circuit(n_logical, gates, seed);
        for router in RouterKind::all_default() {
            for layout in layout_variants(grid.len(), seed ^ 0xA5) {
                let t = Transpiler::new(
                    grid,
                    TranspileOptions { router: router.clone(), initial_layout: layout },
                );
                let res = t.run(&logical);
                // Grid feasibility of every 2-qubit gate.
                prop_assert!(
                    res.physical.is_feasible(|a, b| grid.dist(a, b) == 1),
                    "{}: infeasible output", router.name()
                );
                // Accounting invariant.
                prop_assert_eq!(res.physical.size(), logical.size() + res.swap_count);
                // Statevector equivalence modulo the reported layouts.
                prop_assert!(
                    transpiled_equivalent_embedded(
                        &logical,
                        &res.physical,
                        &res.initial_layout,
                        &res.final_layout,
                    ),
                    "{}: physical circuit is not equivalent to the logical one",
                    router.name()
                );
            }
        }
    }

    #[test]
    fn embedded_checker_agrees_with_full_statevector(
        (gates, seed) in (1usize..=30, 0u64..1 << 20)
    ) {
        // 2x3 grid, full occupancy: small enough to simulate all wires,
        // so the padded full checker and the embedded checker must agree
        // on honest transpiles...
        let grid = Grid::new(2, 3);
        let logical = builders::random_two_qubit_circuit(6, gates, seed);
        let t = Transpiler::new(grid, TranspileOptions::default());
        let res = t.run(&logical);
        prop_assert!(transpiled_equivalent_embedded(
            &logical, &res.physical, &res.initial_layout, &res.final_layout,
        ));
        prop_assert!(transpiled_equivalent(
            &logical, &res.physical, &res.initial_layout, &res.final_layout,
        ));
        // ...and both must reject a final layout the transpile did not
        // realize (swapping two wires the circuit actually uses).
        let mut lied = res.final_layout.clone();
        lied.swap(0, 1);
        prop_assert!(!transpiled_equivalent_embedded(
            &logical, &res.physical, &res.initial_layout, &lied,
        ));
        prop_assert!(!transpiled_equivalent(
            &logical, &res.physical, &res.initial_layout, &lied,
        ));
    }
}
