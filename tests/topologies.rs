//! Cross-layer properties of the topology-generic routing stack:
//! distance-oracle differentials on every non-grid coupling family, and
//! feasibility of approximate token swapping on defective grids.

use proptest::prelude::*;
use qroute::perm::{generators, Permutation};
use qroute::prelude::*;
use qroute::topology::{
    gridlike, ApspOracle, DistanceOracle, LazyBfsOracle, Topology, TopologyOracle,
};

/// Assert `LazyBfsOracle` agrees with the exact all-pairs reference on
/// every vertex pair of `graph` (including unreachable ones).
fn assert_oracles_agree(graph: &Graph, label: &str) {
    let apsp = ApspOracle::new(graph);
    let lazy = LazyBfsOracle::new(graph);
    for u in 0..graph.len() {
        for v in 0..graph.len() {
            assert_eq!(
                lazy.dist(u, v),
                apsp.dist(u, v),
                "{label}: dist({u}, {v}) disagrees"
            );
        }
    }
}

/// A uniform permutation of the alive vertices, fixing the dead ones.
fn alive_random(topology: &Topology, seed: u64) -> Permutation {
    let alive: Vec<usize> = (0..topology.len())
        .filter(|&v| topology.is_alive(v))
        .collect();
    let shuffled = generators::random(alive.len(), seed);
    let mut map: Vec<usize> = (0..topology.len()).collect();
    for (k, &v) in alive.iter().enumerate() {
        map[v] = alive[shuffled.apply(k)];
    }
    Permutation::from_vec(map).expect("permutation of the alive vertices")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The lazy BFS oracle matches exact APSP on defective grids,
    /// including disconnected residuals (unreachable pairs included).
    #[test]
    fn lazy_bfs_matches_apsp_on_defective_grids(
        rows in 1usize..6,
        cols in 1usize..6,
        defect_bits in 0u32..(1 << 12),
    ) {
        let grid = Grid::new(rows, cols);
        let defects: Vec<usize> = (0..grid.len().min(12))
            .filter(|b| defect_bits & (1 << b) != 0)
            .collect();
        let (graph, _old_ids) = gridlike::grid_with_defects(grid, &defects);
        assert_oracles_agree(&graph, &format!("{rows}x{cols} defects {defects:?}"));
    }

    /// ... and on the heavy-hex and brick-wall lattices.
    #[test]
    fn lazy_bfs_matches_apsp_on_heavy_hex_and_brick(
        rows in 1usize..5,
        cols in 1usize..7,
    ) {
        assert_oracles_agree(&gridlike::heavy_hex(rows, cols), &format!("heavy-hex {rows}x{cols}"));
        assert_oracles_agree(&gridlike::brick_wall(rows, cols), &format!("brick {rows}x{cols}"));
    }

    /// The `Topology`-provided oracle agrees with exact APSP on the
    /// topology's own graph, for every variant (closed-form oracles for
    /// grids and tori, BFS for the rest).
    #[test]
    fn topology_oracles_match_apsp(
        rows in 3usize..5,
        cols in 3usize..6,
        variant in 0usize..5,
    ) {
        let topology = match variant {
            0 => Topology::grid(rows, cols),
            1 => Topology::grid_with_defects(Grid::new(rows, cols), &[1, rows * cols - 2], &[])
                .expect("interior defects are valid"),
            2 => Topology::heavy_hex(rows, cols),
            3 => Topology::brick_wall(rows, cols),
            _ => Topology::torus(rows, cols).expect("factors of size >= 3"),
        };
        let graph = topology.graph();
        let oracle: TopologyOracle<'_> = topology.oracle(&graph);
        let apsp = ApspOracle::new(&graph);
        for u in 0..graph.len() {
            for v in 0..graph.len() {
                assert_eq!(oracle.dist(u, v), apsp.dist(u, v), "{topology}: ({u}, {v})");
            }
        }
    }

    /// Approximate token swapping on defective grids: the schedule is
    /// feasible on the defective topology (never using a dead vertex or
    /// edge) and realizes the permutation exactly.
    #[test]
    fn ats_routes_defective_grids(
        side in 3usize..7,
        d1 in 0usize..49,
        d2 in 0usize..49,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side, side);
        let defects: Vec<usize> = std::collections::BTreeSet::from([d1 % grid.len(), d2 % grid.len()])
            .into_iter()
            .collect();
        let topology = Topology::grid_with_defects(grid, &defects, &[]).expect("deduped, in range");
        if topology.validate_routable().is_err() {
            return Ok(()); // the pattern cut the grid
        }
        let pi = alive_random(&topology, seed);
        for router in [RouterKind::Ats, RouterKind::AtsSerial] {
            let schedule = router
                .route_on(&topology, &pi)
                .expect("token swapping accepts any connected topology");
            prop_assert!(schedule.validate_on(&topology.graph()).is_ok(), "{:?}", router);
            prop_assert!(schedule.realizes(&pi), "{:?}", router);
        }
    }
}
