//! Cross-router differential tests: for seeded circuits, every
//! `RouterKind` must produce a physical circuit equivalent (under
//! `qroute_sim::equiv`) to every other router's output for the same
//! input — and the metrics each `TranspileResult` reports must match a
//! recount from the emitted physical circuit and the per-round record.

use qroute::circuit::{builders, Circuit};
use qroute::prelude::*;
use qroute::sim::equiv::transpiled_pair_equivalent;
use qroute::transpiler::{InitialLayout, TranspileResult};

/// The seeded workload matrix: (name, grid, logical circuit).
fn cases() -> Vec<(&'static str, Grid, Circuit)> {
    vec![
        ("qft-8", Grid::new(2, 4), builders::qft(8)),
        (
            "brickwork-10",
            Grid::new(2, 5),
            builders::brickwork(10, 4, 11),
        ),
        (
            "qaoa-9",
            Grid::new(3, 3),
            builders::qaoa_random_graph(9, 2, 7),
        ),
        (
            "sparse-10-on-3x4",
            Grid::new(3, 4),
            builders::random_two_qubit_circuit(10, 24, 3),
        ),
    ]
}

fn transpile_all(grid: Grid, logical: &Circuit) -> Vec<(String, TranspileResult)> {
    RouterKind::all_default()
        .into_iter()
        .map(|router| {
            let name = router.name().to_string();
            let t = Transpiler::new(
                grid,
                TranspileOptions { router, initial_layout: InitialLayout::Identity },
            );
            (name, t.run(logical))
        })
        .collect()
}

#[test]
fn all_router_outputs_are_pairwise_equivalent() {
    for (name, grid, logical) in cases() {
        let results = transpile_all(grid, &logical);
        for i in 0..results.len() {
            for j in i + 1..results.len() {
                let (na, a) = &results[i];
                let (nb, b) = &results[j];
                assert!(
                    transpiled_pair_equivalent(
                        logical.num_qubits(),
                        (&a.physical, &a.initial_layout, &a.final_layout),
                        (&b.physical, &b.initial_layout, &b.final_layout),
                    ),
                    "{name}: {na} and {nb} produced inequivalent physical circuits"
                );
            }
        }
    }
}

#[test]
fn reported_metrics_match_recounts_from_the_physical_circuit() {
    for (name, grid, logical) in cases() {
        for (router, res) in transpile_all(grid, &logical) {
            // swap_count: recount SWAP gates in the emitted circuit (the
            // logical circuit's own SWAPs pass through as gates).
            assert_eq!(
                res.swap_count,
                res.physical.swap_gate_count() - logical.swap_gate_count(),
                "{name}/{router}: swap_count disagrees with the emitted circuit"
            );
            assert_eq!(
                res.physical.size(),
                logical.size() + res.swap_count,
                "{name}/{router}: gate count accounting broken"
            );
            // routing_depth_added and routing_invocations: recount from
            // the per-round record.
            assert_eq!(res.rounds.len(), res.routing_invocations, "{name}/{router}");
            assert_eq!(
                res.rounds.iter().map(|r| r.depth).sum::<usize>(),
                res.routing_depth_added,
                "{name}/{router}: routing_depth_added disagrees with rounds"
            );
            assert_eq!(
                res.rounds.iter().map(|r| r.swaps).sum::<usize>(),
                res.swap_count,
                "{name}/{router}: per-round swaps disagree with swap_count"
            );
            // Feasibility on the grid DAG.
            assert!(res.physical.is_feasible(|a, b| grid.dist(a, b) == 1));
        }
    }
}
